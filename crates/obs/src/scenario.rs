//! Stable JSON artifact for a scenario-matrix sweep.
//!
//! `nashdb-bench scenarios` sweeps a (workload × drift × node mix ×
//! replication budget) matrix, running each cell against NashDB and the
//! baseline allocators, and emits one of these artifacts per run. Like
//! [`ObsSnapshot`](crate::ObsSnapshot) it is the CI contract: versioned,
//! schema-validated on load, deterministic to the byte for same-seed runs
//! once [`ScenarioArtifact::scrub_timings`] has zeroed the wall clock. The
//! `bench-scenarios` CI job diffs one against the committed baseline and
//! fails the build if NashDB loses Pareto-frontier membership in any cell
//! where the baseline had it.

use crate::json::{self, JsonValue};
use crate::snapshot::SnapshotError;

/// Current scenario artifact schema version; bump on breaking changes.
pub const SCENARIO_VERSION: u64 = 1;

/// One system's cost-vs-latency point within a cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemPoint {
    /// System name (`nashdb`, `threshold`, `hypergraph`).
    pub system: String,
    /// Total monetary cost of the run, in 1/100 cent.
    pub cost: f64,
    /// Mean query latency, seconds.
    pub mean_latency_secs: f64,
    /// 99th-percentile query latency, seconds.
    pub p99_latency_secs: f64,
    /// Whether this point is on the cell's Pareto frontier.
    pub on_front: bool,
    /// How many of the cell's other points this one dominates (strictly
    /// better on one axis, no worse on the other).
    pub dominates: u64,
}

/// One cell of the matrix: a scenario plus every system's point in it.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSnapshot {
    /// Workload cell name (`<generator>` from the workload matrix).
    pub workload: String,
    /// Drift level name (`steady` / `drifting`).
    pub drift: String,
    /// Node-class mix preset name (`uniform`, `budget-hdd`, …).
    pub mix: String,
    /// Replication-budget level name (`tight` / `ample`).
    pub budget: String,
    /// Fault-schedule level name (`none` / `crash` / `chaos`). `"none"` is
    /// the failure-free legacy matrix: it is omitted from the serialized
    /// form and from [`key`](CellSnapshot::key), so artifacts written before
    /// this axis existed parse (and key) unchanged.
    pub faults: String,
    /// Every system's point, in a fixed system order.
    pub systems: Vec<SystemPoint>,
    /// Host wall-clock nanoseconds spent simulating the cell (zeroed by
    /// [`ScenarioArtifact::scrub_timings`]).
    pub wall_ns: u64,
}

impl CellSnapshot {
    /// The cell's unique key within an artifact. Failure-free cells keep
    /// their historical four-part key; fault cells append `/<faults>`.
    pub fn key(&self) -> String {
        if self.faults == "none" {
            format!(
                "{}/{}/{}/{}",
                self.workload, self.drift, self.mix, self.budget
            )
        } else {
            format!(
                "{}/{}/{}/{}/{}",
                self.workload, self.drift, self.mix, self.budget, self.faults
            )
        }
    }

    /// Looks up a system's point by name.
    pub fn system(&self, name: &str) -> Option<&SystemPoint> {
        self.systems.iter().find(|s| s.system == name)
    }
}

/// A complete scenario-matrix artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioArtifact {
    /// Schema version (`SCENARIO_VERSION` when produced by this crate).
    pub version: u64,
    /// Free-form run metadata (seed, scale, …) in insertion order.
    pub labels: Vec<(String, String)>,
    /// All cells, in the runner's sweep order.
    pub cells: Vec<CellSnapshot>,
}

fn schema_err<T>(at: &str, message: impl Into<String>) -> Result<T, SnapshotError> {
    Err(SnapshotError::Schema {
        at: at.to_owned(),
        message: message.into(),
    })
}

impl ScenarioArtifact {
    /// Looks up a cell by its [`CellSnapshot::key`].
    pub fn cell(&self, key: &str) -> Option<&CellSnapshot> {
        self.cells.iter().find(|c| c.key() == key)
    }

    /// Zeroes every host wall-clock measurement so two same-seed runs are
    /// byte-identical regardless of machine speed (the sibling of
    /// [`ObsSnapshot::scrub_timings`](crate::ObsSnapshot::scrub_timings)).
    pub fn scrub_timings(&mut self) {
        for cell in &mut self.cells {
            cell.wall_ns = 0;
        }
    }

    /// Serializes to deterministic pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        let labels = JsonValue::Object(
            self.labels
                .iter()
                .map(|(k, v)| (k.clone(), JsonValue::Str(v.clone())))
                .collect(),
        );
        let cells = JsonValue::Array(
            self.cells
                .iter()
                .map(|c| {
                    let systems = JsonValue::Array(
                        c.systems
                            .iter()
                            .map(|s| {
                                JsonValue::Object(vec![
                                    ("system".to_owned(), JsonValue::Str(s.system.clone())),
                                    ("cost".to_owned(), JsonValue::Float(s.cost)),
                                    (
                                        "mean_latency_secs".to_owned(),
                                        JsonValue::Float(s.mean_latency_secs),
                                    ),
                                    (
                                        "p99_latency_secs".to_owned(),
                                        JsonValue::Float(s.p99_latency_secs),
                                    ),
                                    ("on_front".to_owned(), JsonValue::Bool(s.on_front)),
                                    ("dominates".to_owned(), JsonValue::UInt(s.dominates)),
                                ])
                            })
                            .collect(),
                    );
                    let mut fields = vec![
                        ("workload".to_owned(), JsonValue::Str(c.workload.clone())),
                        ("drift".to_owned(), JsonValue::Str(c.drift.clone())),
                        ("mix".to_owned(), JsonValue::Str(c.mix.clone())),
                        ("budget".to_owned(), JsonValue::Str(c.budget.clone())),
                    ];
                    if c.faults != "none" {
                        fields.push(("faults".to_owned(), JsonValue::Str(c.faults.clone())));
                    }
                    fields.push(("systems".to_owned(), systems));
                    fields.push(("wall_ns".to_owned(), JsonValue::UInt(c.wall_ns)));
                    JsonValue::Object(fields)
                })
                .collect(),
        );
        JsonValue::Object(vec![
            ("version".to_owned(), JsonValue::UInt(self.version)),
            ("labels".to_owned(), labels),
            ("cells".to_owned(), cells),
        ])
        .to_pretty_string()
    }

    /// Parses and schema-validates an artifact produced by
    /// [`ScenarioArtifact::to_json_string`].
    ///
    /// # Errors
    /// [`SnapshotError::Json`] on malformed JSON, [`SnapshotError::Schema`]
    /// on any structural violation: wrong version, non-finite numbers, empty
    /// names, duplicate cell keys, duplicate system names, or a cell with no
    /// systems.
    pub fn from_json_str(input: &str) -> Result<Self, SnapshotError> {
        let root = json::parse(input)?;

        let Some(version) = root.get("version").and_then(JsonValue::as_u64) else {
            return schema_err("version", "missing or not an unsigned integer");
        };
        if version != SCENARIO_VERSION {
            return schema_err(
                "version",
                format!("unsupported version {version}, expected {SCENARIO_VERSION}"),
            );
        }

        let labels = match root.get("labels") {
            Some(JsonValue::Object(fields)) => {
                let mut out = Vec::with_capacity(fields.len());
                for (k, v) in fields {
                    match v.as_str() {
                        Some(s) => out.push((k.clone(), s.to_owned())),
                        None => {
                            return schema_err(&format!("labels.{k}"), "label must be a string")
                        }
                    }
                }
                out
            }
            _ => return schema_err("labels", "missing or not an object"),
        };

        let cells = match root.get("cells").and_then(JsonValue::as_array) {
            Some(items) => {
                let mut out: Vec<CellSnapshot> = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    let cell = parse_cell(item, i)?;
                    if out.iter().any(|c| c.key() == cell.key()) {
                        return schema_err(
                            &format!("cells[{i}]"),
                            format!("duplicate cell key {}", cell.key()),
                        );
                    }
                    out.push(cell);
                }
                out
            }
            None => return schema_err("cells", "missing or not an array"),
        };

        Ok(ScenarioArtifact {
            version,
            labels,
            cells,
        })
    }
}

fn field_str(item: &JsonValue, at: &str, key: &str) -> Result<String, SnapshotError> {
    match item.get(key).and_then(JsonValue::as_str) {
        Some(s) if !s.is_empty() => Ok(s.to_owned()),
        _ => schema_err(&format!("{at}.{key}"), "missing or empty string"),
    }
}

fn field_finite_f64(item: &JsonValue, at: &str, key: &str) -> Result<f64, SnapshotError> {
    match item.get(key).and_then(JsonValue::as_f64) {
        Some(v) if v.is_finite() => Ok(v),
        _ => schema_err(&format!("{at}.{key}"), "missing or not a finite number"),
    }
}

fn parse_cell(item: &JsonValue, index: usize) -> Result<CellSnapshot, SnapshotError> {
    let at = format!("cells[{index}]");
    let workload = field_str(item, &at, "workload")?;
    let drift = field_str(item, &at, "drift")?;
    let mix = field_str(item, &at, "mix")?;
    let budget = field_str(item, &at, "budget")?;
    // Optional for backward compatibility: artifacts from before the fault
    // axis have no `faults` field and mean the failure-free level.
    let faults = match item.get("faults") {
        None => "none".to_owned(),
        Some(v) => match v.as_str() {
            Some(s) if !s.is_empty() => s.to_owned(),
            _ => return schema_err(&format!("{at}.faults"), "not a non-empty string"),
        },
    };
    let Some(wall_ns) = item.get("wall_ns").and_then(JsonValue::as_u64) else {
        return schema_err(
            &format!("{at}.wall_ns"),
            "missing or not an unsigned integer",
        );
    };

    let Some(raw_systems) = item.get("systems").and_then(JsonValue::as_array) else {
        return schema_err(&format!("{at}.systems"), "missing or not an array");
    };
    if raw_systems.is_empty() {
        return schema_err(&format!("{at}.systems"), "cell has no systems");
    }
    let mut systems: Vec<SystemPoint> = Vec::with_capacity(raw_systems.len());
    for (j, s) in raw_systems.iter().enumerate() {
        let sat = format!("{at}.systems[{j}]");
        let system = field_str(s, &sat, "system")?;
        if systems.iter().any(|p| p.system == system) {
            return schema_err(&sat, format!("duplicate system {system}"));
        }
        let cost = field_finite_f64(s, &sat, "cost")?;
        let mean_latency_secs = field_finite_f64(s, &sat, "mean_latency_secs")?;
        let p99_latency_secs = field_finite_f64(s, &sat, "p99_latency_secs")?;
        let Some(on_front) = s.get("on_front").and_then(JsonValue::as_bool) else {
            return schema_err(&format!("{sat}.on_front"), "missing or not a boolean");
        };
        let Some(dominates) = s.get("dominates").and_then(JsonValue::as_u64) else {
            return schema_err(
                &format!("{sat}.dominates"),
                "missing or not an unsigned integer",
            );
        };
        if dominates >= raw_systems.len() as u64 {
            return schema_err(
                &format!("{sat}.dominates"),
                format!(
                    "dominates {dominates} but the cell has only {} other points",
                    raw_systems.len() - 1
                ),
            );
        }
        systems.push(SystemPoint {
            system,
            cost,
            mean_latency_secs,
            p99_latency_secs,
            on_front,
            dominates,
        });
    }
    // A cell must have at least one frontier point: the frontier of a
    // non-empty set is non-empty.
    if !systems.iter().any(|s| s.on_front) {
        return schema_err(&format!("{at}.systems"), "no system is on the frontier");
    }

    Ok(CellSnapshot {
        workload,
        drift,
        mix,
        budget,
        faults,
        systems,
        wall_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(system: &str, cost: f64, lat: f64, on_front: bool, dominates: u64) -> SystemPoint {
        SystemPoint {
            system: system.to_owned(),
            cost,
            mean_latency_secs: lat,
            p99_latency_secs: lat * 2.0,
            on_front,
            dominates,
        }
    }

    fn sample() -> ScenarioArtifact {
        ScenarioArtifact {
            version: SCENARIO_VERSION,
            labels: vec![
                ("seed".to_owned(), "42".to_owned()),
                ("scale".to_owned(), "quick".to_owned()),
            ],
            cells: vec![
                CellSnapshot {
                    workload: "tpch".to_owned(),
                    drift: "steady".to_owned(),
                    mix: "uniform".to_owned(),
                    budget: "tight".to_owned(),
                    faults: "none".to_owned(),
                    systems: vec![
                        point("nashdb", 10.0, 0.5, true, 2),
                        point("threshold", 12.0, 0.9, false, 0),
                        point("hypergraph", 11.0, 0.7, false, 0),
                    ],
                    wall_ns: 123_456,
                },
                CellSnapshot {
                    workload: "bernoulli".to_owned(),
                    drift: "drifting".to_owned(),
                    mix: "budget-hdd".to_owned(),
                    budget: "ample".to_owned(),
                    faults: "crash".to_owned(),
                    systems: vec![
                        point("nashdb", 5.0, 1.0, true, 0),
                        point("threshold", 4.0, 1.5, true, 0),
                        point("hypergraph", 6.0, 1.2, false, 0),
                    ],
                    wall_ns: 99,
                },
            ],
        }
    }

    #[test]
    fn round_trip_is_lossless_and_stable() {
        let art = sample();
        let text = art.to_json_string();
        let parsed = ScenarioArtifact::from_json_str(&text).unwrap();
        assert_eq!(parsed, art);
        assert_eq!(parsed.to_json_string(), text);
    }

    #[test]
    fn lookups_work() {
        let art = sample();
        let cell = art.cell("tpch/steady/uniform/tight").unwrap();
        assert_eq!(cell.system("nashdb").map(|s| s.dominates), Some(2));
        assert!(art.cell("nope/steady/uniform/tight").is_none());
        assert!(cell.system("nope").is_none());
        // Fault cells key with the fifth segment.
        assert!(art
            .cell("bernoulli/drifting/budget-hdd/ample/crash")
            .is_some());
        assert!(art.cell("bernoulli/drifting/budget-hdd/ample").is_none());
    }

    #[test]
    fn pre_fault_axis_artifacts_parse_with_default_level() {
        // Serialized before the fault axis existed: no `faults` field.
        let art = sample();
        let text = art.to_json_string();
        assert!(
            !text
                .split("\"faults\": \"crash\"")
                .next()
                .unwrap()
                .contains("faults"),
            "failure-free cells must not serialize the faults field"
        );
        let legacy = text.replace(",\n      \"faults\": \"crash\"", "");
        assert_ne!(legacy, text, "replace must strip the faults field");
        let parsed = ScenarioArtifact::from_json_str(&legacy).unwrap();
        assert!(parsed.cells.iter().all(|c| c.faults == "none"));
        // Re-serializing a legacy artifact reproduces its bytes.
        assert_eq!(parsed.to_json_string(), legacy);
    }

    #[test]
    fn scrub_zeroes_wall_clock_only() {
        let mut art = sample();
        art.scrub_timings();
        assert!(art.cells.iter().all(|c| c.wall_ns == 0));
        // Everything else untouched.
        assert_eq!(art.cells[0].systems, sample().cells[0].systems);
        // Scrubbed artifacts still validate and stay deterministic.
        let text = art.to_json_string();
        assert_eq!(
            ScenarioArtifact::from_json_str(&text)
                .unwrap()
                .to_json_string(),
            text
        );
    }

    #[test]
    fn validation_rejects_schema_violations() {
        let good = sample().to_json_string();
        let cases: Vec<(String, &str)> = vec![
            (good.replace("\"version\": 1", "\"version\": 7"), "version"),
            (good.replace("\"cells\"", "\"zells\""), "missing cells"),
            (
                good.replace("\"system\": \"threshold\"", "\"system\": \"nashdb\""),
                "duplicate system",
            ),
            (
                good.replace("\"cost\": 10.0", "\"cost\": \"ten\""),
                "non-numeric cost",
            ),
            (
                good.replace("\"on_front\": true", "\"on_front\": false"),
                "frontierless cell",
            ),
            (
                good.replace("\"dominates\": 2", "\"dominates\": 3"),
                "dominates out of range",
            ),
        ];
        for (text, why) in cases {
            if text == good {
                panic!("case made no change: {why}");
            }
            assert!(
                ScenarioArtifact::from_json_str(&text).is_err(),
                "should reject: {why}"
            );
        }
        assert!(matches!(
            ScenarioArtifact::from_json_str("not json"),
            Err(SnapshotError::Json(_))
        ));
    }

    #[test]
    fn validation_rejects_duplicate_cells() {
        let mut art = sample();
        let dup = art.cells[0].clone();
        art.cells.push(dup);
        let err = ScenarioArtifact::from_json_str(&art.to_json_string()).unwrap_err();
        assert!(matches!(err, SnapshotError::Schema { .. }), "{err}");
        assert!(err.to_string().contains("duplicate cell key"));
    }
}
