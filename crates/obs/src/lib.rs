//! Dependency-free observability for the NashDB reproduction.
//!
//! The pipeline (value estimation → fragmentation → replication/packing →
//! transition → routing → cluster simulation) records into a thread-local
//! [`ObsSession`]: counters, gauges, log-bucketed [`Histogram`]s, and
//! nestable stage [`span`]s measuring wall-clock per phase. When no session
//! is active every recording call is a cheap no-op — a thread-local read
//! and a branch — so library code can instrument unconditionally without
//! imposing overhead on callers that never asked for metrics.
//!
//! A finished session exports an [`ObsSnapshot`]: a versioned, schema-
//! validated, byte-deterministic JSON document that `nashdb-bench smoke`
//! writes and CI uploads as the per-PR benchmarking artifact.
//!
//! ```
//! use nashdb_obs as obs;
//!
//! let session = obs::ObsSession::start();
//! {
//!     let _pipeline = obs::span("pipeline");
//!     obs::counter_add("value_tree.inserts", 3);
//!     obs::record("routing.queue_wait_tuples", 17);
//! }
//! let snapshot = session.finish();
//! assert_eq!(snapshot.counter("value_tree.inserts"), Some(3));
//! assert_eq!(snapshot.span("pipeline").map(|s| s.count), Some(1));
//! ```

mod histogram;
mod json;
mod registry;
mod scenario;
mod snapshot;

pub use histogram::{bucket_bounds, bucket_index, Histogram, NUM_BUCKETS};
pub use json::{parse as parse_json, JsonError, JsonValue};
pub use registry::{MetricsRegistry, SpanStat};
pub use scenario::{CellSnapshot, ScenarioArtifact, SystemPoint, SCENARIO_VERSION};
pub use snapshot::{HistogramSnapshot, ObsSnapshot, SnapshotError, SpanSnapshot, SNAPSHOT_VERSION};

use std::cell::RefCell;
use std::time::Instant;

/// One open span on the stack: its full path and how much time its direct
/// children have consumed so far.
#[derive(Debug)]
struct Frame {
    path: String,
    child_ns: u64,
}

/// The thread's live collection state while a session is active.
#[derive(Debug)]
struct ActiveSession {
    registry: MetricsRegistry,
    stack: Vec<Frame>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveSession>> = const { RefCell::new(None) };
}

/// Runs `f` against the live session, or returns `default` when inactive.
fn with_active<T>(default: T, f: impl FnOnce(&mut ActiveSession) -> T) -> T {
    ACTIVE.with(|cell| match cell.borrow_mut().as_mut() {
        Some(active) => f(active),
        None => default,
    })
}

/// A recording session bound to the current thread.
///
/// Starting a session arms every instrumentation call on this thread;
/// [`finish`](ObsSession::finish) disarms them and returns the collected
/// [`ObsSnapshot`]. Sessions nest: starting a new one shelves the previous
/// registry and finishing restores it, so a test can observe a narrow
/// region even while an outer session is live. Dropping a session without
/// finishing discards its data and restores the shelved one.
#[must_use = "dropping an unfinished session discards its metrics"]
#[derive(Debug)]
pub struct ObsSession {
    previous: Option<ActiveSession>,
    labels: Vec<(String, String)>,
    finished: bool,
}

impl ObsSession {
    /// Begins collecting on the current thread.
    pub fn start() -> Self {
        let previous = ACTIVE.with(|cell| {
            cell.borrow_mut().replace(ActiveSession {
                registry: MetricsRegistry::new(),
                stack: Vec::new(),
            })
        });
        ObsSession {
            previous,
            labels: Vec::new(),
            finished: false,
        }
    }

    /// Attaches a run-metadata label (workload name, seed, …) that will be
    /// embedded in the snapshot.
    pub fn label(&mut self, key: &str, value: &str) {
        self.labels.push((key.to_owned(), value.to_owned()));
    }

    /// Stops collecting and returns everything recorded since
    /// [`start`](ObsSession::start). Spans still open at this point are
    /// not included — close (drop) their guards first.
    pub fn finish(mut self) -> ObsSnapshot {
        self.finished = true;
        let collected = ACTIVE.with(|cell| {
            let mut slot = cell.borrow_mut();
            let collected = slot.take();
            *slot = self.previous.take();
            collected
        });
        let registry = collected.map(|a| a.registry).unwrap_or_default();
        ObsSnapshot::capture(&registry, std::mem::take(&mut self.labels))
    }
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        if !self.finished {
            ACTIVE.with(|cell| {
                let mut slot = cell.borrow_mut();
                slot.take();
                *slot = self.previous.take();
            });
        }
    }
}

/// Adds `delta` to a counter. No-op without an active session.
pub fn counter_add(name: &str, delta: u64) {
    with_active((), |a| a.registry.counter_add(name, delta));
}

/// Sets a gauge to its latest value (non-finite values are ignored).
/// No-op without an active session.
pub fn gauge_set(name: &str, value: f64) {
    with_active((), |a| a.registry.gauge_set(name, value));
}

/// Records one sample into a histogram. No-op without an active session.
pub fn record(name: &str, value: u64) {
    with_active((), |a| a.registry.record(name, value));
}

/// Records a [`std::time::Duration`] in nanoseconds (saturating at
/// `u64::MAX`). No-op without an active session.
pub fn record_duration(name: &str, elapsed: std::time::Duration) {
    record(name, u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
}

/// True iff an observability session is live on this thread. Lets callers
/// skip expensive metric *computation* (not just recording).
pub fn is_active() -> bool {
    ACTIVE.with(|cell| cell.borrow().is_some())
}

/// Opens a nested wall-clock span. The span closes when the returned guard
/// drops, accumulating its elapsed time under a slash-joined path of every
/// open span (`pipeline/reconfigure/scheme`). Returns an inert guard when
/// no session is active.
pub fn span(name: &str) -> SpanGuard {
    let armed = with_active(false, |a| {
        let path = match a.stack.last() {
            Some(parent) => format!("{}/{name}", parent.path),
            None => name.to_owned(),
        };
        a.stack.push(Frame { path, child_ns: 0 });
        true
    });
    SpanGuard {
        started: armed.then(Instant::now),
    }
}

/// Guard for an open [`span`]; closing (dropping) it records the elapsed
/// wall-clock time.
#[must_use = "a span measures the scope of its guard; dropping it immediately records nothing"]
#[derive(Debug)]
pub struct SpanGuard {
    /// `Some` iff a session was active when the span opened.
    started: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(started) = self.started else {
            return;
        };
        let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        with_active((), |a| {
            let Some(frame) = a.stack.pop() else {
                // A fresh session started inside the span; nothing to record.
                return;
            };
            a.registry.span_add(&frame.path, elapsed_ns, frame.child_ns);
            if let Some(parent) = a.stack.last_mut() {
                parent.child_ns = parent.child_ns.saturating_add(elapsed_ns);
            }
        });
    }
}

/// Captures what a worker thread needs to record metrics on behalf of the
/// current thread's session: whether one is active and the slash-joined
/// path of the innermost open span. Obtain one with [`fork`] before fanning
/// work out, share it across workers (`Fork` is `Sync`), run each worker's
/// body through [`Fork::run`], and [`absorb`] the returned registries on
/// the parent thread **in a deterministic order** (item order, not
/// completion order) so same-seed runs stay byte-identical at any
/// parallelism level.
#[derive(Debug, Clone)]
pub struct Fork {
    /// `Some(path)` when a session is live (`path` empty at span-stack
    /// root); `None` when recording is disarmed and workers should skip
    /// collection entirely.
    parent_path: Option<String>,
}

/// Snapshots the current thread's session state for worker threads. See
/// [`Fork`].
pub fn fork() -> Fork {
    Fork {
        parent_path: with_active(None, |a| {
            Some(a.stack.last().map_or(String::new(), |f| f.path.clone()))
        }),
    }
}

impl Fork {
    /// Runs `f` with recording armed on the calling thread (intended: a
    /// worker), collecting into a fresh registry rooted at the fork's span
    /// path — a span opened inside `f` lands under the same path it would
    /// have had on the parent thread. Returns `f`'s result plus the
    /// registry to [`absorb`], or `None` when the fork was taken with no
    /// session active (recording stays a no-op, as on the parent).
    ///
    /// Worker time is not attributed to the parent span's `child_ns` —
    /// wall-clock nesting has no meaning across threads; snapshot
    /// consumers that need stable output scrub timings anyway
    /// ([`ObsSnapshot::scrub_timings`]).
    pub fn run<R>(&self, f: impl FnOnce() -> R) -> (R, Option<MetricsRegistry>) {
        let Some(parent_path) = &self.parent_path else {
            return (f(), None);
        };
        let stack = if parent_path.is_empty() {
            Vec::new()
        } else {
            vec![Frame {
                path: parent_path.clone(),
                child_ns: 0,
            }]
        };
        let previous = ACTIVE.with(|cell| {
            cell.borrow_mut().replace(ActiveSession {
                registry: MetricsRegistry::new(),
                stack,
            })
        });
        let result = f();
        let collected = ACTIVE.with(|cell| {
            let mut slot = cell.borrow_mut();
            let collected = slot.take();
            *slot = previous;
            collected
        });
        (result, collected.map(|a| a.registry))
    }
}

/// Merges a worker registry (from [`Fork::run`]) into the current thread's
/// active session. No-op without one — matching `Fork::run`'s no-session
/// behavior, so fan-out call sites never need to branch.
pub fn absorb(registry: &MetricsRegistry) {
    with_active((), |a| a.registry.merge_from(registry));
}

/// Starts a wall-clock stopwatch for one-shot duration histograms. Unlike
/// [`span`], a stopwatch does not participate in the span hierarchy — it
/// records into a plain `*_ns` histogram via
/// [`record`](Stopwatch::record).
pub fn stopwatch() -> Stopwatch {
    Stopwatch {
        started: is_active().then(Instant::now),
    }
}

/// A running [`stopwatch`]; consume it with [`record`](Stopwatch::record).
#[must_use = "a stopwatch records nothing until `record` is called"]
#[derive(Debug)]
pub struct Stopwatch {
    started: Option<Instant>,
}

impl Stopwatch {
    /// Records the elapsed nanoseconds into the named histogram. No-op if
    /// no session was active when the stopwatch started.
    pub fn record(self, name: &str) {
        if let Some(started) = self.started {
            record_duration(name, started.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn inactive_calls_are_noops() {
        counter_add("c", 1);
        gauge_set("g", 1.0);
        record("h", 1);
        let _span = span("s");
        stopwatch().record("sw");
        assert!(!is_active());
        // A session started afterwards sees none of it.
        let snap = ObsSession::start().finish();
        assert_eq!(snap.counters.len(), 0);
        assert_eq!(snap.histograms.len(), 0);
        assert_eq!(snap.spans.len(), 0);
    }

    #[test]
    fn session_collects_and_disarms() {
        let mut session = ObsSession::start();
        assert!(is_active());
        session.label("workload", "test");
        counter_add("value_tree.inserts", 2);
        counter_add("value_tree.inserts", 3);
        gauge_set("replication.nash_surplus", 1.25);
        record("routing.queue_wait_tuples", 64);
        let snap = session.finish();
        assert!(!is_active());
        assert_eq!(snap.version, SNAPSHOT_VERSION);
        assert_eq!(
            snap.labels,
            vec![("workload".to_owned(), "test".to_owned())]
        );
        assert_eq!(snap.counter("value_tree.inserts"), Some(5));
        assert_eq!(snap.gauge("replication.nash_surplus"), Some(1.25));
        assert_eq!(
            snap.histogram("routing.queue_wait_tuples").map(|h| h.max),
            Some(64)
        );
    }

    #[test]
    fn nested_spans_attribute_child_time() {
        let session = ObsSession::start();
        {
            let _outer = span("pipeline");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = span("scheme");
                std::thread::sleep(Duration::from_millis(2));
            }
            {
                let _inner = span("scheme");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let snap = session.finish();
        let outer = snap.span("pipeline").unwrap();
        let inner = snap.span("pipeline/scheme").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 2);
        // Child wall-clock is contained in the parent's.
        assert!(inner.total_ns <= outer.total_ns);
        // The parent's child_ns is exactly the inner spans' total.
        assert_eq!(outer.child_ns, inner.total_ns);
        // Leaf spans have no children.
        assert_eq!(inner.child_ns, 0);
        // Self time is non-negative by construction and here strictly
        // positive because the outer scope slept on its own.
        assert!(outer.total_ns - outer.child_ns > 0);
    }

    #[test]
    fn sessions_shelve_and_restore() {
        let outer = ObsSession::start();
        counter_add("outer", 1);
        {
            let inner = ObsSession::start();
            counter_add("inner", 1);
            let snap = inner.finish();
            assert_eq!(snap.counter("inner"), Some(1));
            assert_eq!(snap.counter("outer"), None);
        }
        // The outer session is live again and kept its data.
        counter_add("outer", 1);
        let snap = outer.finish();
        assert_eq!(snap.counter("outer"), Some(2));
        assert_eq!(snap.counter("inner"), None);
    }

    #[test]
    fn dropping_unfinished_session_restores_previous() {
        let outer = ObsSession::start();
        counter_add("outer", 1);
        {
            let _abandoned = ObsSession::start();
            counter_add("lost", 1);
            // dropped without finish()
        }
        let snap = outer.finish();
        assert_eq!(snap.counter("outer"), Some(1));
        assert_eq!(snap.counter("lost"), None);
        assert!(!is_active());
    }

    #[test]
    fn stopwatch_records_into_histogram() {
        let session = ObsSession::start();
        let sw = stopwatch();
        std::thread::sleep(Duration::from_millis(1));
        sw.record("fragment.greedy_ns");
        let snap = session.finish();
        let h = snap.histogram("fragment.greedy_ns").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.max >= 1_000_000, "slept ≥1ms, got {}ns", h.max);
    }

    #[test]
    fn fork_collects_worker_metrics_under_parent_span_path() {
        let session = ObsSession::start();
        let registries = {
            let _outer = span("pipeline");
            let _inner = span("scheme");
            counter_add("fragment.runs", 1);
            let fork = fork();
            let workers: Vec<Option<MetricsRegistry>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|i| {
                        let fork = &fork;
                        s.spawn(move || {
                            fork.run(|| {
                                counter_add("fragment.runs", 1);
                                record("fragment.chunks", i);
                                let _w = span("value_chunks");
                            })
                            .1
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            workers
        };
        for r in registries {
            absorb(&r.unwrap());
        }
        let snap = session.finish();
        assert_eq!(snap.counter("fragment.runs"), Some(5));
        assert_eq!(snap.histogram("fragment.chunks").map(|h| h.count), Some(4));
        // Worker spans nest under the forked path.
        assert_eq!(
            snap.span("pipeline/scheme/value_chunks").map(|s| s.count),
            Some(4)
        );
    }

    #[test]
    fn fork_without_session_is_inert() {
        assert!(!is_active());
        let fork = fork();
        let (value, registry) = fork.run(|| {
            counter_add("lost", 1);
            7
        });
        assert_eq!(value, 7);
        assert!(registry.is_none());
        // absorb without a session is a quiet no-op.
        absorb(&MetricsRegistry::new());
    }

    #[test]
    fn fork_at_stack_root_records_root_level_spans() {
        let session = ObsSession::start();
        let fork = fork();
        let ((), registry) = fork.run(|| {
            let _s = span("solo");
        });
        absorb(&registry.unwrap());
        let snap = session.finish();
        assert_eq!(snap.span("solo").map(|s| s.count), Some(1));
    }

    #[test]
    fn record_duration_saturates() {
        let session = ObsSession::start();
        record_duration("d", Duration::from_secs(u64::MAX));
        let snap = session.finish();
        assert_eq!(snap.histogram("d").map(|h| h.max), Some(u64::MAX));
    }
}
