//! The in-memory metric store behind an observability session.

use std::collections::BTreeMap;

use crate::histogram::Histogram;

/// Accumulated wall-clock statistics for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Times the span was entered.
    pub count: u64,
    /// Total nanoseconds spent inside the span (including children).
    pub total_ns: u64,
    /// Nanoseconds attributed to directly nested child spans.
    pub child_ns: u64,
}

/// All metrics recorded during one session: counters, gauges, histograms,
/// and span statistics, each keyed by name.
///
/// `BTreeMap` keeps iteration (and therefore snapshot emission) in sorted,
/// deterministic order — two identical runs produce byte-identical output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStat>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (saturating).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if let Some(slot) = self.counters.get_mut(name) {
            *slot = slot.saturating_add(delta);
        } else {
            self.counters.insert(name.to_owned(), delta);
        }
    }

    /// Sets the named gauge to its latest value. Non-finite values are
    /// ignored so snapshots stay valid JSON.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        if value.is_finite() {
            self.gauges.insert(name.to_owned(), value);
        }
    }

    /// Records one sample into the named histogram.
    pub fn record(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::new();
            h.record(value);
            self.histograms.insert(name.to_owned(), h);
        }
    }

    /// Adds one completed span occurrence to the named span path.
    pub fn span_add(&mut self, path: &str, elapsed_ns: u64, child_ns: u64) {
        let stat = self.spans.entry(path.to_owned()).or_default();
        stat.count = stat.count.saturating_add(1);
        stat.total_ns = stat.total_ns.saturating_add(elapsed_ns);
        stat.child_ns = stat.child_ns.saturating_add(child_ns);
    }

    /// The named counter's value (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's latest value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// The named span path's statistics, if the span ever closed.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.get(path)
    }

    /// All counters in sorted name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in sorted name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in sorted name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// All span paths in sorted order.
    pub fn spans(&self) -> impl Iterator<Item = (&str, &SpanStat)> {
        self.spans.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds another registry into this one: counters and span statistics
    /// add, histograms merge element-wise, gauges take `other`'s value
    /// (last-write-wins, as if `other`'s sets happened after this
    /// registry's). Equivalent to having recorded both streams into one
    /// registry — the primitive behind deterministic fan-out collection,
    /// where worker-thread registries are absorbed in worker order.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (name, &v) in &other.counters {
            self.counter_add(name, v);
        }
        for (name, &v) in &other.gauges {
            self.gauge_set(name, v);
        }
        for (name, h) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(name) {
                mine.merge(h);
            } else {
                self.histograms.insert(name.clone(), h.clone());
            }
        }
        for (path, s) in &other.spans {
            let stat = self.spans.entry(path.clone()).or_default();
            stat.count = stat.count.saturating_add(s.count);
            stat.total_ns = stat.total_ns.saturating_add(s.total_ns);
            stat.child_ns = stat.child_ns.saturating_add(s.child_ns);
        }
    }

    /// True iff nothing at all has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let mut r = MetricsRegistry::new();
        assert_eq!(r.counter("x"), 0);
        r.counter_add("x", 3);
        r.counter_add("x", 4);
        assert_eq!(r.counter("x"), 7);
        r.counter_add("x", u64::MAX);
        assert_eq!(r.counter("x"), u64::MAX);
    }

    #[test]
    fn gauges_keep_latest_and_reject_non_finite() {
        let mut r = MetricsRegistry::new();
        r.gauge_set("g", 1.5);
        r.gauge_set("g", -2.5);
        assert_eq!(r.gauge("g"), Some(-2.5));
        r.gauge_set("g", f64::NAN);
        r.gauge_set("g", f64::INFINITY);
        assert_eq!(r.gauge("g"), Some(-2.5));
        r.gauge_set("never", f64::NAN);
        assert_eq!(r.gauge("never"), None);
    }

    #[test]
    fn histograms_record_samples() {
        let mut r = MetricsRegistry::new();
        r.record("h", 10);
        r.record("h", 20);
        let h = r.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 30);
        assert!(r.histogram("missing").is_none());
    }

    #[test]
    fn spans_accumulate_occurrences() {
        let mut r = MetricsRegistry::new();
        r.span_add("a/b", 100, 40);
        r.span_add("a/b", 50, 0);
        let s = r.span("a/b").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 150);
        assert_eq!(s.child_ns, 40);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut r = MetricsRegistry::new();
        r.counter_add("z", 1);
        r.counter_add("a", 1);
        r.counter_add("m", 1);
        let names: Vec<_> = r.counters().map(|(n, _)| n.to_owned()).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }

    #[test]
    fn merge_from_equals_combined_recording() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 2);
        a.gauge_set("g", 1.0);
        a.record("h", 8);
        a.span_add("s/t", 100, 30);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", 3);
        b.counter_add("only_b", 1);
        b.gauge_set("g", 2.5);
        b.record("h", 16);
        b.record("h2", 1);
        b.span_add("s/t", 50, 10);

        let mut combined = MetricsRegistry::new();
        combined.counter_add("c", 2);
        combined.counter_add("c", 3);
        combined.counter_add("only_b", 1);
        combined.gauge_set("g", 1.0);
        combined.gauge_set("g", 2.5);
        combined.record("h", 8);
        combined.record("h", 16);
        combined.record("h2", 1);
        combined.span_add("s/t", 100, 30);
        combined.span_add("s/t", 50, 10);

        a.merge_from(&b);
        assert_eq!(a, combined);
    }

    #[test]
    fn merge_from_empty_is_identity() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 1);
        let before = a.clone();
        a.merge_from(&MetricsRegistry::new());
        assert_eq!(a, before);
        let mut empty = MetricsRegistry::new();
        empty.merge_from(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn empty_registry_reports_empty() {
        let mut r = MetricsRegistry::new();
        assert!(r.is_empty());
        r.counter_add("c", 1);
        assert!(!r.is_empty());
    }
}
