//! # nashdb-par
//!
//! Dependency-free scoped-thread fan-out for the NashDB reproduction.
//!
//! The build environment is fully offline, so rayon is unavailable; this
//! crate provides the tiny slice of data parallelism the pipeline actually
//! needs — "map this independent per-item work across cores" — on plain
//! [`std::thread::scope`]. Three properties are guaranteed:
//!
//! * **Deterministic merge order.** Results come back in item order,
//!   regardless of which worker finished first, so same-seed runs stay
//!   byte-identical whether they ran on 1 core or 64.
//! * **Panic propagation.** A panic on a worker thread is re-raised on the
//!   calling thread via [`std::panic::resume_unwind`], preserving the
//!   payload — invariant-audit assertions keep working under fan-out.
//! * **Serial fast path.** Work smaller than the caller's `min_chunk`
//!   threshold (or a single-core host) runs inline with zero thread spawns,
//!   so small reconfigurations pay nothing for the capability.
//!
//! Workers are spawned per call. The pipeline fans out a handful of times
//! per reconfiguration period (once per stage), so spawn cost is noise next
//! to the work; a persistent pool would buy nothing but shutdown hazards.

use std::num::NonZeroUsize;

/// Number of worker threads a fan-out may use: the machine's available
/// parallelism, floored at 1 (the query if the host refuses to answer).
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// How many workers to use for `len` items when each worker should hold at
/// least `min_chunk` items: 0 or 1 means "run serially".
fn worker_count(len: usize, min_chunk: usize) -> usize {
    let min_chunk = min_chunk.max(1);
    (len / min_chunk).min(max_threads())
}

/// Splits `len` items into `workers` contiguous chunks whose sizes differ by
/// at most one, returned as `(start, end)` index pairs.
fn chunk_bounds(len: usize, workers: usize) -> Vec<(usize, usize)> {
    let base = len / workers;
    let extra = len % workers;
    let mut bounds = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        bounds.push((start, start + size));
        start += size;
    }
    bounds
}

/// Joins a scoped worker, re-raising its panic on the caller.
fn join<T>(handle: std::thread::ScopedJoinHandle<'_, T>) -> T {
    match handle.join() {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Maps `f` over `items` (with each item's index), fanning out across
/// threads when there are at least `min_chunk` items per worker to justify
/// the spawns. Results are returned in item order.
pub fn map<T, R, F>(items: &[T], min_chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = worker_count(items.len(), min_chunk);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let bounds = chunk_bounds(items.len(), workers);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(start, end)| {
                let chunk = &items[start..end];
                scope.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(off, t)| f(start + off, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for h in handles {
            out.extend(join(h));
        }
        out
    })
}

/// Like [`map`] but over mutable items, for per-item state machines (one
/// fragmenter per table, say) that each worker advances independently.
pub fn map_mut<T, R, F>(items: &mut [T], min_chunk: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let workers = worker_count(items.len(), min_chunk);
    if workers <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let bounds = chunk_bounds(items.len(), workers);
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        let mut rest = items;
        let mut consumed = 0;
        for &(start, end) in &bounds {
            let (chunk, tail) = rest.split_at_mut(end - consumed);
            rest = tail;
            consumed = end;
            handles.push(scope.spawn(move || {
                chunk
                    .iter_mut()
                    .enumerate()
                    .map(|(off, t)| f(start + off, t))
                    .collect::<Vec<R>>()
            }));
        }
        let mut out = Vec::with_capacity(bounds.last().map_or(0, |&(_, e)| e));
        for h in handles {
            out.extend(join(h));
        }
        out
    })
}

/// Builds a `Vec` of `len` values where element `i` is `f(i)` — the
/// "parallelize this independent loop" primitive (a DP layer, a per-index
/// table fill). Fan-out rules are as in [`map`].
pub fn fill<R, F>(len: usize, min_chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = worker_count(len, min_chunk);
    if workers <= 1 {
        return (0..len).map(f).collect();
    }
    let bounds = chunk_bounds(len, workers);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(start, end)| scope.spawn(move || (start..end).map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(len);
        for h in handles {
            out.extend(join(h));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_at_any_granularity() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for min_chunk in [1, 7, 100, 10_000] {
            let parallel = map(&items, min_chunk, |_, &x| x * 3 + 1);
            assert_eq!(parallel, serial, "min_chunk {min_chunk}");
        }
    }

    #[test]
    fn map_passes_global_indices() {
        let items = vec![(); 503];
        let idxs = map(&items, 1, |i, ()| i);
        assert_eq!(idxs, (0..503).collect::<Vec<usize>>());
    }

    #[test]
    fn map_mut_mutates_every_item_once() {
        let mut items: Vec<u64> = vec![0; 257];
        let out = map_mut(&mut items, 1, |i, slot| {
            *slot += 1;
            i as u64
        });
        assert!(items.iter().all(|&x| x == 1));
        assert_eq!(out, (0..257).collect::<Vec<u64>>());
    }

    #[test]
    fn fill_matches_serial_construction() {
        let serial: Vec<usize> = (0..97).map(|i| i * i).collect();
        assert_eq!(fill(97, 1, |i| i * i), serial);
        assert_eq!(fill(97, 1000, |i| i * i), serial);
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        assert_eq!(map(&[] as &[u8], 1, |_, &x| x), Vec::<u8>::new());
        assert_eq!(fill(0, 1, |i| i), Vec::<usize>::new());
        assert_eq!(map(&[5u8], 1, |_, &x| x), vec![5]);
    }

    #[test]
    fn chunks_cover_exactly_once() {
        for len in [1usize, 2, 9, 10, 11, 100] {
            for workers in 1..=8.min(len) {
                let bounds = chunk_bounds(len, workers);
                assert_eq!(bounds.first().map(|b| b.0), Some(0));
                assert_eq!(bounds.last().map(|b| b.1), Some(len));
                for w in bounds.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                }
            }
        }
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            map(&items, 1, |i, _| {
                assert!(i != 40, "boom at {i}");
                i
            })
        });
        assert!(result.is_err());
    }
}
