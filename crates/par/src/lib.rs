//! # nashdb-par
//!
//! Dependency-free data parallelism for the NashDB reproduction, built on
//! a **persistent deterministic worker pool**.
//!
//! The build environment is fully offline, so rayon is unavailable; this
//! crate provides the tiny slice of data parallelism the pipeline actually
//! needs — "map this independent per-item work across cores". Three
//! properties are guaranteed:
//!
//! * **Deterministic merge order.** Results come back in item order,
//!   regardless of which worker finished first, so same-seed runs stay
//!   byte-identical whether they ran on 1 core or 64.
//! * **Panic propagation.** A panic on a worker is re-raised on the calling
//!   thread via [`std::panic::resume_unwind`] — the payload of the *first
//!   chunk in item order* that panicked — preserving invariant-audit
//!   assertions under fan-out.
//! * **Serial fast path.** Work smaller than the caller's `min_chunk`
//!   threshold (or a single-core host) runs inline with zero pool traffic,
//!   so small reconfigurations pay nothing for the capability.
//!
//! ## Why a pool, and how it stays deterministic
//!
//! Earlier revisions spawned scoped threads per call, which was fine for a
//! handful of fan-outs per reconfiguration period but dominates cost when
//! the batch router fans out per sim event. Workers are now spawned once
//! (lazily, on first parallel call) and live for the process; each call
//! ships **owned** `'static` jobs to them. Determinism does not come from
//! the schedule — workers race freely — but from the merge: chunk `i` of a
//! call is always assigned to worker `i % workers`, every chunk reports
//! `(chunk_index, result)` on a per-call channel, and the caller reassembles
//! strictly in chunk order. Same-input calls therefore return bit-identical
//! results on any core count, which is what the replay/snapshot gates test.
//!
//! Jobs must own their data (`'static` bound): a persistent pool cannot
//! borrow from the caller's stack in safe Rust, and this workspace forbids
//! `unsafe`. Callers hand items in by value ([`map_vec`], [`map_mut_vec`],
//! [`fill_with`]) and get them back in the result merge.
//!
//! Nested fan-out (a pool job that itself calls into this crate) runs
//! serially inline on the worker: shipping sub-jobs to a fixed-size pool
//! from inside the pool can deadlock, and the serial path is
//! result-identical by the merge contract anyway.
//!
//! [`pool_stats`] exposes thread/chunk counters so benchmarks can assert
//! the pool is actually reused (`perf.par.pool_reuse`) rather than
//! respawned.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, OnceLock};

/// Number of worker threads a fan-out may use: the machine's available
/// parallelism, floored at 1 (the query if the host refuses to answer).
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Worker threads in the persistent pool. Floored at 2 even on single-core
/// hosts: the merge machinery (and the `perf.par.pool_reuse` gauge that
/// watches it) must stay exercised everywhere, and correctness never
/// depends on physical parallelism — only the merge order matters.
fn pool_size() -> usize {
    max_threads().max(2)
}

/// How many workers to use for `len` items when each worker should hold at
/// least `min_chunk` items: 0 or 1 means "run serially".
fn worker_count(len: usize, min_chunk: usize) -> usize {
    let min_chunk = min_chunk.max(1);
    (len / min_chunk).min(pool_size())
}

/// Splits `len` items into `workers` contiguous chunks whose sizes differ by
/// at most one, returned as `(start, end)` index pairs.
fn chunk_bounds(len: usize, workers: usize) -> Vec<(usize, usize)> {
    let base = len / workers;
    let extra = len % workers;
    let mut bounds = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        bounds.push((start, start + size));
        start += size;
    }
    bounds
}

/// An owned unit of work shipped to a pool worker.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The persistent pool: one channel per long-lived worker thread. Chunk `i`
/// of any call goes to worker `i % senders.len()`, so the job→worker map is
/// a pure function of the call shape.
struct Pool {
    senders: Vec<Sender<Job>>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// Lifetime count of worker threads actually spawned (≤ [`max_threads`],
/// and constant after the first parallel call — that constancy *is* the
/// reuse property `perf.par.pool_reuse` tracks).
static THREADS_SPAWNED: AtomicU64 = AtomicU64::new(0);
/// Lifetime count of chunks shipped to pool workers.
static CHUNKS_EXECUTED: AtomicU64 = AtomicU64::new(0);
/// Lifetime count of parallel (non-serial-fast-path) calls.
static PARALLEL_ROUNDS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// True on pool worker threads; nested fan-out goes serial (see module
    /// docs).
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Lazily spawns the pool. A worker that fails to spawn leaves a sender
/// whose receiver is gone; sends to it fail and the chunk runs inline on
/// the caller, so a thread-starved host degrades to serial, not to error.
fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let senders = (0..pool_size())
            .map(|w| {
                let (tx, rx) = channel::<Job>();
                let spawned = std::thread::Builder::new()
                    .name(format!("nashdb-par-{w}"))
                    .spawn(move || {
                        IN_POOL_WORKER.with(|flag| flag.set(true));
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .is_ok();
                if spawned {
                    THREADS_SPAWNED.fetch_add(1, Ordering::Relaxed);
                }
                tx
            })
            .collect();
        Pool { senders }
    })
}

/// Pool usage counters, for bench gauges and reuse assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads ever spawned (constant after pool init).
    pub threads_spawned: u64,
    /// Chunks executed on pool workers over the process lifetime.
    pub chunks_executed: u64,
    /// Parallel calls (serial fast-path calls are not counted).
    pub parallel_rounds: u64,
}

/// Snapshot of the pool counters.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        threads_spawned: THREADS_SPAWNED.load(Ordering::Relaxed),
        chunks_executed: CHUNKS_EXECUTED.load(Ordering::Relaxed),
        parallel_rounds: PARALLEL_ROUNDS.load(Ordering::Relaxed),
    }
}

/// Ships the given chunk closures to the pool and merges their outputs in
/// chunk order. Panics from chunks are re-raised in chunk order (first
/// panicking chunk wins), after all chunks have reported.
fn run_chunks<R>(chunks: Vec<Box<dyn FnOnce() -> Vec<R> + Send + 'static>>) -> Vec<R>
where
    R: Send + 'static,
{
    let n = chunks.len();
    let pool = pool();
    PARALLEL_ROUNDS.fetch_add(1, Ordering::Relaxed);
    let (tx, rx) = channel::<(usize, std::thread::Result<Vec<R>>)>();
    for (idx, chunk) in chunks.into_iter().enumerate() {
        let txc = tx.clone();
        let job: Job = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(chunk));
            // The receiver outlives every job (we block on it below); a
            // failed send means the caller already unwound, so drop it.
            let _ = txc.send((idx, result));
        });
        CHUNKS_EXECUTED.fetch_add(1, Ordering::Relaxed);
        let worker = idx % pool.senders.len();
        if let Err(rejected) = pool.senders[worker].send(job) {
            // Worker never spawned (thread-starved host): run inline; the
            // job still reports through the channel like any other.
            (rejected.0)();
        }
    }
    drop(tx);
    let mut slots: Vec<Option<std::thread::Result<Vec<R>>>> = Vec::new();
    slots.resize_with(n, || None);
    // Every dispatched job sends exactly once (catch_unwind swallows chunk
    // panics before the send), so this receives exactly `n` messages.
    while let Ok((idx, result)) = rx.recv() {
        slots[idx] = Some(result);
    }
    let mut out = Vec::new();
    let mut first_panic = None;
    for (idx, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(Ok(part)) => out.extend(part),
            Some(Err(payload)) => {
                if first_panic.is_none() {
                    first_panic = Some(payload);
                }
            }
            None => {
                // Unreachable by the exactly-once send argument above; kept
                // as a loud typed failure rather than a silent short merge.
                if first_panic.is_none() {
                    first_panic = Some(Box::new(format!(
                        "nashdb-par: chunk {idx} never reported a result"
                    )));
                }
            }
        }
    }
    if let Some(payload) = first_panic {
        resume_unwind(payload);
    }
    out
}

/// Maps `f` over owned `items` (with each item's global index), fanning out
/// across the persistent pool when there are at least `min_chunk` items per
/// worker to justify the traffic. Results are returned in item order.
pub fn map_vec<T, R, F>(items: Vec<T>, min_chunk: usize, f: F) -> Vec<R>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(usize, T) -> R + Send + Sync + 'static,
{
    let workers = worker_count(items.len(), min_chunk);
    if workers <= 1 || IN_POOL_WORKER.with(Cell::get) {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let bounds = chunk_bounds(items.len(), workers);
    let f = Arc::new(f);
    let mut items = items.into_iter();
    let chunks = bounds
        .iter()
        .map(|&(start, end)| {
            let chunk: Vec<T> = items.by_ref().take(end - start).collect();
            let f = Arc::clone(&f);
            let closure = move || {
                chunk
                    .into_iter()
                    .enumerate()
                    .map(|(off, t)| f(start + off, t))
                    .collect::<Vec<R>>()
            };
            Box::new(closure) as Box<dyn FnOnce() -> Vec<R> + Send + 'static>
        })
        .collect();
    run_chunks(chunks)
}

/// Like [`map_vec`] but for per-item state machines (one fragmenter per
/// table, say) that each worker advances in place: `f` gets `&mut T`, and
/// the mutated items come back alongside the results, both in item order.
pub fn map_mut_vec<T, R, F>(items: Vec<T>, min_chunk: usize, f: F) -> (Vec<T>, Vec<R>)
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(usize, &mut T) -> R + Send + Sync + 'static,
{
    map_vec(items, min_chunk, move |i, mut t| {
        let r = f(i, &mut t);
        (t, r)
    })
    .into_iter()
    .unzip()
}

/// Builds a `Vec` of `len` values where element `i` is `f(i)` — the
/// "parallelize this independent loop" primitive (a DP layer, a per-index
/// table fill). Fan-out rules are as in [`map_vec`]; shared inputs travel
/// inside `f` (clone an [`Arc`] into the closure).
pub fn fill_with<R, F>(len: usize, min_chunk: usize, f: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(usize) -> R + Send + Sync + 'static,
{
    let workers = worker_count(len, min_chunk);
    if workers <= 1 || IN_POOL_WORKER.with(Cell::get) {
        return (0..len).map(f).collect();
    }
    let bounds = chunk_bounds(len, workers);
    let f = Arc::new(f);
    let chunks = bounds
        .iter()
        .map(|&(start, end)| {
            let f = Arc::clone(&f);
            let closure = move || (start..end).map(|i| f(i)).collect::<Vec<R>>();
            Box::new(closure) as Box<dyn FnOnce() -> Vec<R> + Send + 'static>
        })
        .collect();
    run_chunks(chunks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_vec_preserves_order_at_any_granularity() {
        let serial: Vec<u64> = (0..1000).map(|x| x * 3 + 1).collect();
        for min_chunk in [1, 7, 100, 10_000] {
            let items: Vec<u64> = (0..1000).collect();
            let parallel = map_vec(items, min_chunk, |_, x| x * 3 + 1);
            assert_eq!(parallel, serial, "min_chunk {min_chunk}");
        }
    }

    #[test]
    fn map_vec_passes_global_indices() {
        let idxs = map_vec(vec![(); 503], 1, |i, ()| i);
        assert_eq!(idxs, (0..503).collect::<Vec<usize>>());
    }

    #[test]
    fn map_mut_vec_mutates_every_item_once_and_returns_them() {
        let items: Vec<u64> = vec![0; 257];
        let (items, out) = map_mut_vec(items, 1, |i, slot| {
            *slot += 1;
            i as u64
        });
        assert_eq!(items.len(), 257);
        assert!(items.iter().all(|&x| x == 1));
        assert_eq!(out, (0..257).collect::<Vec<u64>>());
    }

    #[test]
    fn fill_with_matches_serial_construction() {
        let serial: Vec<usize> = (0..97).map(|i| i * i).collect();
        assert_eq!(fill_with(97, 1, |i| i * i), serial);
        assert_eq!(fill_with(97, 1000, |i| i * i), serial);
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        assert_eq!(map_vec(Vec::<u8>::new(), 1, |_, x| x), Vec::<u8>::new());
        assert_eq!(fill_with(0, 1, |i| i), Vec::<usize>::new());
        assert_eq!(map_vec(vec![5u8], 1, |_, x| x), vec![5]);
    }

    #[test]
    fn chunks_cover_exactly_once() {
        for len in [1usize, 2, 9, 10, 11, 100] {
            for workers in 1..=8.min(len) {
                let bounds = chunk_bounds(len, workers);
                assert_eq!(bounds.first().map(|b| b.0), Some(0));
                assert_eq!(bounds.last().map(|b| b.1), Some(len));
                for w in bounds.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                }
            }
        }
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            map_vec((0..64usize).collect::<Vec<_>>(), 1, |i, _| {
                assert!(i != 40, "boom at {i}");
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn pool_threads_are_reused_across_rounds() {
        // Warm the pool, then check that more rounds do not spawn threads.
        let _ = fill_with(4096, 1, |i| i);
        let before = pool_stats();
        for _ in 0..8 {
            let _ = fill_with(4096, 1, |i| i * 2);
        }
        let after = pool_stats();
        assert_eq!(
            after.threads_spawned, before.threads_spawned,
            "rounds after pool init must not spawn threads"
        );
        // Other tests share the pool, so counters may advance by more than
        // this test's own traffic — but at least by it.
        assert!(after.parallel_rounds >= before.parallel_rounds + 8);
        assert!(after.chunks_executed > before.chunks_executed);
    }

    #[test]
    fn nested_fanout_runs_serial_and_does_not_deadlock() {
        let items: Vec<u64> = (0..64).collect();
        let got = map_vec(items, 1, |_, x| {
            // Inner call from a pool worker: must not ship jobs back into
            // the (busy) pool. min_chunk 1 would fan out if allowed.
            fill_with(32, 1, move |j| x + j as u64).iter().sum::<u64>()
        });
        let want: Vec<u64> = (0..64u64)
            .map(|x| (0..32u64).map(|j| x + j).sum())
            .collect();
        assert_eq!(got, want);
    }
}
