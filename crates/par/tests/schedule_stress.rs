//! Schedule-stress tests: drive `nashdb-par` under seeded adversarial
//! thread timing and assert the crate's load-bearing guarantees —
//! item-order merge, panic propagation, and pool reuse — hold no matter
//! which worker finishes first.
//!
//! Real nondeterminism comes from the OS scheduler; these tests *force*
//! pessimal schedules instead of hoping for them: per-item sleeps drawn
//! from a seeded LCG (so failures reproduce), reversed so late chunks
//! finish before early ones, plus a worst case where worker 0 is the
//! straggler every merge must wait for.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nashdb_par::{fill_with, map_mut_vec, map_vec, pool_stats};

const ITEMS: usize = 256;

/// Deterministic per-(seed, index) delay in {0, …, 750} microseconds.
/// Same-seed runs sleep identically, so a failing schedule replays.
fn lcg_delay_us(seed: u64, i: usize) -> u64 {
    let mut x = seed
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(i as u64)
        .wrapping_mul(1_442_695_040_888_963_407);
    x ^= x >> 33;
    (x % 4) * 250
}

fn sleep_us(us: u64) {
    if us > 0 {
        std::thread::sleep(Duration::from_micros(us));
    }
}

#[test]
fn merge_order_survives_seeded_adversarial_timing() {
    let serial: Vec<u64> = (0..ITEMS as u64).map(|x| x * 7 + 3).collect();
    for seed in [1, 0xDEAD_BEEF, u64::MAX] {
        for min_chunk in [1, 3, 16] {
            let items: Vec<u64> = (0..ITEMS as u64).collect();
            let got = map_vec(items, min_chunk, move |i, x| {
                sleep_us(lcg_delay_us(seed, i));
                x * 7 + 3
            });
            assert_eq!(got, serial, "seed {seed:#x}, min_chunk {min_chunk}");
        }
    }
}

#[test]
fn merge_order_survives_reversed_completion() {
    // Delay grows with the item index *reversed*: the last chunk's items
    // are the quickest, so workers complete in reverse dispatch order and
    // the merge must reorder every chunk.
    let items: Vec<usize> = (0..ITEMS).collect();
    let got = map_vec(items.clone(), 1, |i, x| {
        sleep_us(((ITEMS - 1 - i) as u64 % 16) * 100);
        x
    });
    assert_eq!(got, items);
}

#[test]
fn merge_waits_for_a_single_straggler_first_worker() {
    // Worker 0 owns the lowest indices; making only those slow means every
    // other worker finishes long before the one whose results go first.
    let items: Vec<usize> = (0..ITEMS).collect();
    let got = map_vec(items.clone(), 1, |i, x| {
        if i < ITEMS / 8 {
            sleep_us(500);
        }
        x * 2
    });
    assert_eq!(got, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
}

#[test]
fn map_mut_vec_touches_each_item_exactly_once_under_stress() {
    let items: Vec<u64> = vec![0; ITEMS];
    let visits = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&visits);
    let (items, out) = map_mut_vec(items, 1, move |i, slot| {
        sleep_us(lcg_delay_us(7, i));
        counter.fetch_add(1, Ordering::Relaxed);
        *slot += 1;
        i
    });
    assert_eq!(visits.load(Ordering::Relaxed), ITEMS);
    assert!(
        items.iter().all(|&x| x == 1),
        "an item was skipped or revisited"
    );
    assert_eq!(
        out,
        (0..ITEMS).collect::<Vec<_>>(),
        "results out of item order"
    );
}

#[test]
fn fill_with_is_identical_across_schedules_and_granularities() {
    let reference: Vec<u64> = (0..ITEMS as u64).map(|i| i * i).collect();
    for seed in [3, 99] {
        for min_chunk in [1, 8, usize::MAX] {
            let got = fill_with(ITEMS, min_chunk, move |i| {
                sleep_us(lcg_delay_us(seed, i));
                (i * i) as u64
            });
            assert_eq!(got, reference, "seed {seed}, min_chunk {min_chunk}");
        }
    }
}

#[test]
fn panic_payload_survives_fanout_with_live_siblings() {
    // The panicking item sits mid-range while sibling workers are still
    // sleeping, so propagation must work with the pool still busy; the
    // payload string must arrive intact on the caller.
    let result = std::panic::catch_unwind(|| {
        map_vec((0..ITEMS).collect::<Vec<_>>(), 1, |i, x: usize| {
            sleep_us(lcg_delay_us(11, i));
            assert!(i != ITEMS / 2, "boom at {i}");
            x
        })
    });
    let payload = result.expect_err("the worker panic must reach the caller");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
        .expect("panic payload is a message");
    assert!(
        msg.contains(&format!("boom at {}", ITEMS / 2)),
        "payload was not preserved: {msg:?}"
    );
}

#[test]
fn pool_survives_a_panicking_round_and_keeps_serving() {
    // A panic inside a chunk must not kill the worker thread that ran it:
    // the pool has to keep answering later rounds with zero fresh spawns.
    let _ = std::panic::catch_unwind(|| {
        map_vec((0..ITEMS).collect::<Vec<_>>(), 1, |i, x: usize| {
            assert!(i != 3, "poisoning attempt at {i}");
            x
        })
    });
    let spawned_after_panic = pool_stats().threads_spawned;
    let reference: Vec<usize> = (0..ITEMS).map(|x| x + 1).collect();
    for round in 0..4u64 {
        let got = map_vec((0..ITEMS).collect::<Vec<_>>(), 1, move |i, x| {
            sleep_us(lcg_delay_us(round, i) / 5);
            x + 1
        });
        assert_eq!(got, reference, "round {round} after the panic diverged");
    }
    assert_eq!(
        pool_stats().threads_spawned,
        spawned_after_panic,
        "a panicking chunk must not cost worker threads"
    );
}

#[test]
fn repeated_rounds_stay_deterministic() {
    // The pipeline's byte-identical-replay contract, in miniature: many
    // fan-out rounds with scheduler-perturbing sleeps must all agree.
    let reference = map_vec((0..ITEMS as u64).collect::<Vec<_>>(), 1, |_, x| {
        x.wrapping_mul(0x9E37_79B9)
    });
    for round in 0..8u64 {
        let got = map_vec((0..ITEMS as u64).collect::<Vec<_>>(), 1, move |i, x| {
            sleep_us(lcg_delay_us(round, i) / 5);
            x.wrapping_mul(0x9E37_79B9)
        });
        assert_eq!(got, reference, "round {round} diverged");
    }
}
