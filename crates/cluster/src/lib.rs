//! # nashdb-cluster
//!
//! A deterministic, discrete-event simulation of the shared-nothing elastic
//! cluster the NashDB prototype ran on (the paper used AWS EC2 +
//! PostgreSQL; see DESIGN.md for the substitution argument).
//!
//! The simulator models exactly the observations NashDB's algorithms
//! consume and the quantities its evaluation reports:
//!
//! * each node serves fragment reads from a FIFO **disk queue**; read time
//!   is proportional to the tuples read (paper §8),
//! * queries complete when all of their fragment reads complete; latency is
//!   completion − arrival,
//! * **reconfigurations** apply a `TransitionPlan` from `nashdb-core`:
//!   reused nodes keep their queues, fresh nodes are provisioned,
//!   decommissioned nodes drain and retire, and transferred tuples occupy
//!   the receiving node's disk queue (so transition overhead shows up in
//!   query latency, as in the paper's measurements),
//! * **monetary cost** accrues per node-hour from provisioning to
//!   retirement,
//! * an optional **shared-link network model** ("one big switch": per-node
//!   NICs into a contended core link) charges fragment reads and transition
//!   transfers for bandwidth, so concurrent flows delay each other,
//! * **seeded fault schedules** inject node crashes (queued jobs lost,
//!   affected queries handed back to the driver for retry),
//!   crash-with-restart, and straggler windows, with availability counters
//!   ([`metrics::Availability`]) accumulating the fallout.
//!
//! The simulator is policy-free: *which* node serves a read, *when* the
//! cluster reconfigures, and *how* to react to a crashed replica
//! ([`DriverEvent::NodeFailed`] / [`DriverEvent::QueryFailed`]) are decided
//! by the driver (the `nashdb` facade or a baseline system), which is what
//! lets every system in the paper's evaluation run on the identical
//! substrate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod metrics;
mod sim;

pub use metrics::{Availability, CostLatency, Metrics, QueryRecord};
pub use sim::{
    ClusterConfig, ClusterSim, DispatchError, DriverEvent, NetConfig, QueryRequest,
    ReconfigureError, ScanRange,
};
