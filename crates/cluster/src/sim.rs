//! The event-driven cluster simulator.

use std::collections::{HashMap, HashSet, VecDeque};

use nashdb_core::ids::{NodeId, QueryId, TableId};
use nashdb_core::transition::{NodeMove, TransitionPlan};
use nashdb_sim::{EventQueue, SimDuration, SimTime};

use crate::metrics::{Metrics, QueryRecord};

/// Simulator parameters.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Sequential disk throughput per node, in tuples per second. Both
    /// fragment reads and incoming transfer writes are charged at this rate.
    pub throughput_tps: f64,
    /// Node rent, in 1/100 cent per hour (the paper reports cost in 1/100
    /// cent).
    pub node_cost_per_hour: f64,
    /// Bucket width for the throughput-over-time series.
    pub metrics_bucket: SimDuration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            // Loosely an SSD-backed EC2 volume scanning ~1 GB/s of 100-byte
            // tuples.
            throughput_tps: 10_000_000.0,
            node_cost_per_hour: 100.0,
            metrics_bucket: SimDuration::from_secs(60),
        }
    }
}

/// One range scan of a query, against a table's physical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanRange {
    /// The scanned table.
    pub table: TableId,
    /// First tuple (inclusive).
    pub start: u64,
    /// One past the last tuple (exclusive).
    pub end: u64,
}

impl ScanRange {
    /// Creates a scan range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn new(table: TableId, start: u64, end: u64) -> Self {
        assert!(start < end, "empty scan range {start}..{end}");
        ScanRange { table, start, end }
    }

    /// Tuples read.
    pub fn size(&self) -> u64 {
        self.end - self.start
    }
}

/// A query submitted to the cluster: a price (priority) and its range scans.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// The price the user pays for the query, in 1/100 cent.
    pub price: f64,
    /// The scans its plan issues.
    pub scans: Vec<ScanRange>,
    /// Caller tag (e.g. TPC-H template number) carried through to metrics
    /// consumers.
    pub tag: u32,
}

/// What the simulator hands back to its driver.
#[derive(Debug, Clone, PartialEq)]
pub enum DriverEvent {
    /// A query has arrived and must now be routed: the driver must call
    /// [`ClusterSim::dispatch`] before pulling the next event.
    QueryArrived {
        /// The query's id.
        id: QueryId,
        /// The query itself.
        query: QueryRequest,
    },
    /// A query finished all of its fragment reads.
    QueryCompleted {
        /// The query's id.
        id: QueryId,
        /// Its end-to-end latency.
        latency: SimDuration,
    },
    /// A driver-scheduled timer fired (used for reconfiguration intervals).
    Wakeup {
        /// The tag passed to [`ClusterSim::schedule_wakeup`].
        tag: u64,
    },
    /// No events remain; the simulation is over.
    Finished,
}

/// Why a [`ClusterSim::dispatch`] call was rejected. The simulator is left
/// untouched: no read of the rejected query is enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchError {
    /// The query already had its reads dispatched.
    DuplicateQuery {
        /// The query dispatched twice.
        id: QueryId,
    },
    /// A read targets a node id outside the current scheme.
    UnknownNode {
        /// The out-of-range node.
        node: NodeId,
    },
    /// A read targets a node that is draining toward retirement.
    InactiveNode {
        /// The retiring node.
        node: NodeId,
    },
}

impl std::fmt::Display for DispatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchError::DuplicateQuery { id } => {
                write!(f, "query {id} dispatched twice")
            }
            DispatchError::UnknownNode { node } => {
                write!(f, "dispatch to unknown node {node}")
            }
            DispatchError::InactiveNode { node } => {
                write!(f, "dispatch to retiring node {node}")
            }
        }
    }
}

impl std::error::Error for DispatchError {}

#[derive(Debug)]
enum Event {
    Arrival(QueryId),
    JobDone { phys: usize },
    Wakeup(u64),
}

#[derive(Debug, Clone, Copy)]
struct Job {
    tuples: u64,
    /// `Some` for a query fragment read, `None` for a transfer write.
    query: Option<QueryId>,
}

#[derive(Debug)]
struct PhysNode {
    queue: VecDeque<Job>,
    /// The job currently on the disk, if any.
    in_service: Option<Job>,
    /// Tuples of work enqueued and not yet completed (including the
    /// in-service job, in full — queue wait as a router sees it).
    backlog: u64,
    /// Accepts new work (false once decommissioned; it drains then retires).
    active: bool,
    provisioned_at: SimTime,
    retired_at: Option<SimTime>,
    /// Total disk time spent serving jobs.
    busy: SimDuration,
    retired: bool,
}

#[derive(Debug)]
struct QueryState {
    arrival: SimTime,
    pending: usize,
    nodes: HashSet<usize>,
}

/// The cluster simulator. See the crate docs for the driving protocol.
#[derive(Debug)]
pub struct ClusterSim {
    cfg: ClusterConfig,
    events: EventQueue<Event>,
    phys: Vec<PhysNode>,
    /// Logical scheme node -> physical node.
    logical: Vec<usize>,
    pending: HashMap<QueryId, QueryRequest>,
    running: HashMap<QueryId, QueryState>,
    metrics: Metrics,
    next_query: u64,
}

impl ClusterSim {
    /// Creates an empty cluster (no nodes; reconfigure to provision).
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(
            cfg.throughput_tps > 0.0 && cfg.throughput_tps.is_finite(),
            "throughput must be positive"
        );
        assert!(
            cfg.node_cost_per_hour >= 0.0 && cfg.node_cost_per_hour.is_finite(),
            "node cost must be nonnegative"
        );
        let metrics = Metrics::new(cfg.metrics_bucket);
        ClusterSim {
            cfg,
            events: EventQueue::new(),
            phys: Vec::new(),
            logical: Vec::new(),
            pending: HashMap::new(),
            running: HashMap::new(),
            metrics,
            next_query: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Number of active (logical) nodes.
    pub fn num_nodes(&self) -> usize {
        self.logical.len()
    }

    /// Read access to the metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Queued work per logical node, in tuples — the router's wait
    /// observations.
    pub fn queue_waits(&self) -> Vec<u64> {
        self.logical.iter().map(|&p| self.phys[p].backlog).collect()
    }

    /// Schedules a query to arrive at `at`. Returns its id.
    pub fn schedule_query(&mut self, at: SimTime, query: QueryRequest) -> QueryId {
        let id = QueryId(self.next_query);
        self.next_query += 1;
        self.pending.insert(id, query);
        self.events.schedule(at, Event::Arrival(id));
        id
    }

    /// Schedules a driver timer.
    pub fn schedule_wakeup(&mut self, at: SimTime, tag: u64) {
        self.events.schedule(at, Event::Wakeup(tag));
    }

    /// Routes an arrived query: one `(node, tuples)` read per fragment
    /// request. Must be called exactly once per `QueryArrived` event, before
    /// the next [`next_event`](Self::next_event) call.
    ///
    /// # Errors
    /// Rejects the dispatch — leaving the simulator untouched — if the query
    /// was already dispatched, a node id is out of range, or a target node
    /// is draining toward retirement.
    pub fn dispatch(&mut self, id: QueryId, reads: &[(NodeId, u64)]) -> Result<(), DispatchError> {
        if self.running.contains_key(&id) {
            return Err(DispatchError::DuplicateQuery { id });
        }
        // Validate every read before enqueueing any, so a rejected dispatch
        // leaves no partial work behind.
        let mut targets = Vec::with_capacity(reads.len());
        for &(node, _) in reads {
            let phys = *self
                .logical
                .get(node.index())
                .ok_or(DispatchError::UnknownNode { node })?;
            if !self.phys[phys].active {
                return Err(DispatchError::InactiveNode { node });
            }
            targets.push(phys);
        }
        let now = self.now();
        if reads.is_empty() {
            // Nothing to read: completes instantly.
            self.complete_query(
                id,
                &QueryState {
                    arrival: now,
                    pending: 0,
                    nodes: HashSet::new(),
                },
            );
            return Ok(());
        }
        let mut state = QueryState {
            arrival: now,
            pending: reads.len(),
            nodes: HashSet::new(),
        };
        for (&(_, tuples), &phys) in reads.iter().zip(&targets) {
            state.nodes.insert(phys);
            self.enqueue_job(
                phys,
                Job {
                    tuples,
                    query: Some(id),
                },
            );
        }
        self.running.insert(id, state);
        nashdb_obs::counter_add("cluster.reads_dispatched", reads.len() as u64);
        Ok(())
    }

    /// Applies a transition plan: reused nodes keep their queues (and
    /// receive their transfer as a queued write), fresh nodes are
    /// provisioned, decommissioned nodes drain and retire.
    ///
    /// # Panics
    /// Panics if the plan's old-node ids do not match the current cluster.
    pub fn reconfigure(&mut self, plan: &TransitionPlan) {
        let now = self.now();
        let new_count = plan
            .moves
            .iter()
            .filter_map(|m| match m {
                NodeMove::Reuse { new, .. } | NodeMove::Provision { new, .. } => {
                    Some(new.index() + 1)
                }
                NodeMove::Decommission { .. } => None,
            })
            .max()
            .unwrap_or(0);

        let old_logical = std::mem::take(&mut self.logical);
        let mut new_logical = vec![usize::MAX; new_count];
        let mut total_transfer = 0u64;

        for m in &plan.moves {
            match *m {
                NodeMove::Reuse { old, new, transfer } => {
                    let phys = old_logical[old.index()];
                    new_logical[new.index()] = phys;
                    if transfer > 0 {
                        self.enqueue_job(
                            phys,
                            Job {
                                tuples: transfer,
                                query: None,
                            },
                        );
                        total_transfer = total_transfer.saturating_add(transfer);
                    }
                }
                NodeMove::Provision { new, transfer } => {
                    let phys = self.phys.len();
                    self.phys.push(PhysNode {
                        queue: VecDeque::new(),
                        in_service: None,
                        backlog: 0,
                        active: true,
                        provisioned_at: now,
                        retired_at: None,
                        busy: SimDuration::ZERO,
                        retired: false,
                    });
                    new_logical[new.index()] = phys;
                    if transfer > 0 {
                        self.enqueue_job(
                            phys,
                            Job {
                                tuples: transfer,
                                query: None,
                            },
                        );
                        total_transfer = total_transfer.saturating_add(transfer);
                    }
                }
                NodeMove::Decommission { old } => {
                    let phys = old_logical[old.index()];
                    self.phys[phys].active = false;
                    self.maybe_retire(phys, now);
                }
            }
        }
        assert!(
            new_logical.iter().all(|&p| p != usize::MAX),
            "transition plan does not cover every new node"
        );
        self.logical = new_logical;
        self.metrics.peak_nodes = self.metrics.peak_nodes.max(self.logical.len());
        self.metrics.reconfigurations += 1;
        self.metrics.transfers.push((now, total_transfer));
        nashdb_obs::counter_add("cluster.reconfigurations", 1);
        nashdb_obs::counter_add("cluster.transfer_tuples", total_transfer);
        nashdb_obs::gauge_set("cluster.nodes", self.logical.len() as f64);
    }

    /// Advances the simulation to the next driver-relevant event.
    pub fn next_event(&mut self) -> DriverEvent {
        loop {
            let Some((now, event)) = self.events.pop() else {
                return DriverEvent::Finished;
            };
            match event {
                Event::Arrival(id) => {
                    let Some(query) = self.pending.remove(&id) else {
                        unreachable!("arrival event for unscheduled query {id}")
                    };
                    return DriverEvent::QueryArrived { id, query };
                }
                Event::Wakeup(tag) => return DriverEvent::Wakeup { tag },
                Event::JobDone { phys } => {
                    if let Some(done) = self.job_done(phys, now) {
                        return done;
                    }
                }
            }
        }
    }

    /// Ends the run: accrues cost for every non-retired node up to the
    /// current time and returns the metrics.
    pub fn finish(mut self) -> Metrics {
        let end = self.now();
        for i in 0..self.phys.len() {
            if !self.phys[i].retired {
                self.accrue(i, end);
            }
        }
        self.metrics
    }

    fn service_time(&self, tuples: u64) -> SimDuration {
        SimDuration::from_secs_f64(tuples as f64 / self.cfg.throughput_tps)
    }

    fn enqueue_job(&mut self, phys: usize, job: Job) {
        let node = &mut self.phys[phys];
        node.backlog += job.tuples;
        if node.in_service.is_none() {
            node.in_service = Some(job);
            let at = self.events.now() + self.service_time(job.tuples);
            self.events.schedule(at, Event::JobDone { phys });
        } else {
            node.queue.push_back(job);
        }
    }

    fn job_done(&mut self, phys: usize, now: SimTime) -> Option<DriverEvent> {
        let node = &mut self.phys[phys];
        let Some(job) = node.in_service.take() else {
            unreachable!("JobDone fired for an idle disk")
        };
        node.backlog -= job.tuples;
        node.busy += SimDuration::from_secs_f64(job.tuples as f64 / self.cfg.throughput_tps);
        // Start the next job, if any.
        if let Some(next) = node.queue.pop_front() {
            node.in_service = Some(next);
            let at = now + self.service_time(next.tuples);
            self.events.schedule(at, Event::JobDone { phys });
        } else {
            self.maybe_retire(phys, now);
        }

        match job.query {
            None => None, // transfer write finished; nothing to report
            Some(id) => {
                self.metrics.read_throughput.add(now, job.tuples as f64);
                let Some(state) = self.running.get_mut(&id) else {
                    unreachable!("fragment read finished for unknown query {id}")
                };
                state.pending -= 1;
                if state.pending == 0 {
                    let Some(state) = self.running.remove(&id) else {
                        unreachable!("query {id} vanished between pending checks")
                    };
                    Some(self.complete_query(id, &state))
                } else {
                    None
                }
            }
        }
    }

    fn complete_query(&mut self, id: QueryId, state: &QueryState) -> DriverEvent {
        let now = self.now();
        let record = QueryRecord {
            id,
            arrival: state.arrival,
            completion: now,
            span: u32::try_from(state.nodes.len()).unwrap_or(u32::MAX),
        };
        self.metrics.queries.push(record);
        // Latency is simulated time, so this histogram is deterministic per
        // seed (unlike the wall-clock `*_ns` stage timings).
        nashdb_obs::counter_add("cluster.queries_completed", 1);
        nashdb_obs::record("cluster.query_latency_ns", record.latency().as_nanos());
        nashdb_obs::record("cluster.query_span", u64::from(record.span));
        DriverEvent::QueryCompleted {
            id,
            latency: record.latency(),
        }
    }

    fn maybe_retire(&mut self, phys: usize, now: SimTime) {
        let node = &self.phys[phys];
        if !node.active && node.in_service.is_none() && node.queue.is_empty() && !node.retired {
            self.accrue(phys, now);
        }
    }

    fn accrue(&mut self, phys: usize, until: SimTime) {
        let node = &mut self.phys[phys];
        debug_assert!(!node.retired);
        let hours = until.since(node.provisioned_at).as_secs_f64() / 3600.0;
        self.metrics.total_cost += hours * self.cfg.node_cost_per_hour;
        node.retired_at = Some(until);
        node.retired = true;
        let utilization = (node.busy.as_secs_f64()
            / until.since(node.provisioned_at).as_secs_f64().max(1e-12))
        .min(1.0);
        self.metrics.node_utilization.push(utilization);
        // Parts-per-million so the busy fraction fits an integer histogram.
        nashdb_obs::record(
            "cluster.node_utilization_ppm",
            nashdb_core::num::saturating_u64(utilization * 1e6),
        );
        nashdb_obs::gauge_set("cluster.total_cost", self.metrics.total_cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nashdb_core::transition::{plan_transition, IntervalSet};

    fn cfg() -> ClusterConfig {
        ClusterConfig {
            throughput_tps: 1_000.0,    // 1k tuples/sec: easy arithmetic
            node_cost_per_hour: 3600.0, // 1 unit per second
            metrics_bucket: SimDuration::from_secs(10),
        }
    }

    fn provision(n: usize) -> TransitionPlan {
        let new: Vec<IntervalSet> = (0..n).map(|_| IntervalSet::new()).collect();
        plan_transition(&[], &new)
    }

    fn query(scans: &[(u64, u64)]) -> QueryRequest {
        QueryRequest {
            price: 1.0,
            scans: scans
                .iter()
                .map(|&(s, e)| ScanRange::new(TableId(0), s, e))
                .collect(),
            tag: 0,
        }
    }

    /// Drives the sim to completion, dispatching every query to `route`.
    fn drive(
        sim: &mut ClusterSim,
        mut route: impl FnMut(&ClusterSim, &QueryRequest) -> Vec<(NodeId, u64)>,
    ) {
        loop {
            match sim.next_event() {
                DriverEvent::QueryArrived { id, query } => {
                    let reads = route(sim, &query);
                    sim.dispatch(id, &reads).unwrap();
                }
                DriverEvent::Finished => break,
                _ => {}
            }
        }
    }

    #[test]
    fn single_query_latency_is_service_time() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(1));
        sim.schedule_query(SimTime::from_secs(1), query(&[(0, 500)]));
        drive(&mut sim, |_, _| vec![(NodeId(0), 500)]);
        let m = sim.finish();
        assert_eq!(m.queries.len(), 1);
        // 500 tuples at 1000 tps = 0.5 s.
        assert!((m.queries[0].latency().as_secs_f64() - 0.5).abs() < 1e-9);
        assert_eq!(m.queries[0].span, 1);
    }

    #[test]
    fn fifo_queueing_delays_second_query() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(1));
        sim.schedule_query(SimTime::from_secs(0), query(&[(0, 1000)]));
        sim.schedule_query(SimTime::from_secs(0), query(&[(0, 1000)]));
        drive(&mut sim, |_, _| vec![(NodeId(0), 1000)]);
        let m = sim.finish();
        let mut lats: Vec<f64> = m
            .queries
            .iter()
            .map(|q| q.latency().as_secs_f64())
            .collect();
        lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((lats[0] - 1.0).abs() < 1e-9);
        assert!((lats[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_reads_reduce_latency_and_count_span() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(2));
        sim.schedule_query(SimTime::from_secs(0), query(&[(0, 500), (500, 1000)]));
        drive(&mut sim, |_, _| vec![(NodeId(0), 500), (NodeId(1), 500)]);
        let m = sim.finish();
        assert!((m.queries[0].latency().as_secs_f64() - 0.5).abs() < 1e-9);
        assert_eq!(m.queries[0].span, 2);
    }

    #[test]
    fn queue_waits_reflect_backlog() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(2));
        sim.schedule_query(SimTime::from_secs(0), query(&[(0, 700)]));
        // Dispatch on arrival, then inspect waits immediately.
        match sim.next_event() {
            DriverEvent::QueryArrived { id, .. } => {
                sim.dispatch(id, &[(NodeId(1), 700)]).unwrap();
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(sim.queue_waits(), vec![0, 700]);
    }

    #[test]
    fn cost_accrues_per_node_hour() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(3));
        // Let the clock advance 100 s with an idle timer.
        sim.schedule_wakeup(SimTime::from_secs(100), 0);
        assert!(matches!(sim.next_event(), DriverEvent::Wakeup { tag: 0 }));
        assert!(matches!(sim.next_event(), DriverEvent::Finished));
        let m = sim.finish();
        // 3 nodes × 100 s × 1 cost/s.
        assert!((m.total_cost - 300.0).abs() < 1e-6, "cost {}", m.total_cost);
    }

    #[test]
    fn decommissioned_node_drains_then_stops_costing() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(2));
        sim.schedule_query(SimTime::from_secs(0), query(&[(0, 1000)]));
        match sim.next_event() {
            DriverEvent::QueryArrived { id, .. } => sim.dispatch(id, &[(NodeId(1), 1000)]).unwrap(),
            other => panic!("unexpected {other:?}"),
        }
        // Scale down to one node: keep node 0, decommission busy node 1.
        let old = vec![
            IntervalSet::from_intervals([(0u64, 10u64)]),
            IntervalSet::from_intervals([(50u64, 60u64)]),
        ];
        let new = vec![IntervalSet::from_intervals([(0u64, 10u64)])];
        sim.reconfigure(&plan_transition(&old, &new));
        assert_eq!(sim.num_nodes(), 1);
        // The draining node still completes the query.
        let mut completed = false;
        loop {
            match sim.next_event() {
                DriverEvent::QueryCompleted { .. } => completed = true,
                DriverEvent::Finished => break,
                _ => {}
            }
        }
        assert!(completed);
        // Much later, only the surviving node accrues cost.
        let m = sim.finish();
        // Node 1 retired at t=1 s (drain), node 0 at t=1 s (end of events):
        // total 2 node-seconds.
        assert!((m.total_cost - 2.0).abs() < 1e-6, "cost {}", m.total_cost);
    }

    #[test]
    fn transfers_occupy_disk_and_are_counted() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(1));
        // Grow to 2 nodes; the new node must copy 2000 tuples.
        let old = vec![IntervalSet::from_intervals([(0u64, 2000u64)])];
        let new = vec![
            IntervalSet::from_intervals([(0u64, 2000u64)]),
            IntervalSet::from_intervals([(0u64, 2000u64)]),
        ];
        sim.reconfigure(&plan_transition(&old, &new));
        // A query dispatched to the new node waits behind the transfer.
        sim.schedule_query(
            SimTime::ZERO + SimDuration::from_millis(1),
            query(&[(0, 100)]),
        );
        drive(&mut sim, |_, _| vec![(NodeId(1), 100)]);
        let m = sim.finish();
        assert_eq!(m.total_transfer(), 2000);
        assert_eq!(m.reconfigurations, 2);
        // Latency ≈ remaining transfer (2 s − 1 ms) + own read (0.1 s).
        let lat = m.queries[0].latency().as_secs_f64();
        assert!((lat - 2.099).abs() < 1e-6, "latency {lat}");
    }

    #[test]
    fn reused_nodes_keep_their_queues() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(2));
        sim.schedule_query(SimTime::from_secs(0), query(&[(0, 1000)]));
        match sim.next_event() {
            DriverEvent::QueryArrived { id, .. } => sim.dispatch(id, &[(NodeId(0), 1000)]).unwrap(),
            other => panic!("unexpected {other:?}"),
        }
        // Identity-ish reconfigure: same two nodes.
        let sets = vec![
            IntervalSet::from_intervals([(0u64, 10u64)]),
            IntervalSet::from_intervals([(20u64, 30u64)]),
        ];
        sim.reconfigure(&plan_transition(&sets, &sets));
        // Backlog survived the transition.
        assert_eq!(sim.queue_waits()[0], 1000);
    }

    #[test]
    fn empty_dispatch_completes_immediately() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(1));
        sim.schedule_query(SimTime::from_secs(5), query(&[(0, 10)]));
        match sim.next_event() {
            DriverEvent::QueryArrived { id, .. } => sim.dispatch(id, &[]).unwrap(),
            other => panic!("unexpected {other:?}"),
        }
        let m = sim.finish();
        assert_eq!(m.queries.len(), 1);
        assert_eq!(m.queries[0].latency(), SimDuration::ZERO);
    }

    #[test]
    fn double_dispatch_is_rejected() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(1));
        sim.schedule_query(SimTime::from_secs(0), query(&[(0, 10)]));
        match sim.next_event() {
            DriverEvent::QueryArrived { id, .. } => {
                sim.dispatch(id, &[(NodeId(0), 10)]).unwrap();
                assert_eq!(
                    sim.dispatch(id, &[(NodeId(0), 10)]),
                    Err(DispatchError::DuplicateQuery { id })
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(2));
        // Node 0 works 1 s of a 2 s run; node 1 stays idle.
        sim.schedule_query(SimTime::from_secs(0), query(&[(0, 1000)]));
        match sim.next_event() {
            DriverEvent::QueryArrived { id, .. } => sim.dispatch(id, &[(NodeId(0), 1000)]).unwrap(),
            other => panic!("unexpected {other:?}"),
        }
        sim.schedule_wakeup(SimTime::from_secs(2), 0);
        while !matches!(sim.next_event(), DriverEvent::Finished) {}
        let m = sim.finish();
        let mut u = m.node_utilization.clone();
        u.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(u.len(), 2);
        assert!(u[0].abs() < 1e-9, "idle node utilization {}", u[0]);
        assert!((u[1] - 0.5).abs() < 1e-6, "busy node utilization {}", u[1]);
    }

    #[test]
    fn peak_nodes_tracks_largest_cluster() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(3));
        assert_eq!(sim.metrics().peak_nodes, 3);
        // Shrink to 1: the peak must remember 3.
        let old: Vec<IntervalSet> = (0..3)
            .map(|i| IntervalSet::from_intervals([(i * 10, i * 10 + 5)]))
            .collect();
        let new = vec![IntervalSet::from_intervals([(0u64, 5u64)])];
        sim.reconfigure(&plan_transition(&old, &new));
        assert_eq!(sim.num_nodes(), 1);
        assert_eq!(sim.metrics().peak_nodes, 3);
    }

    #[test]
    fn throughput_series_counts_read_tuples_only() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(1));
        let old = vec![IntervalSet::from_intervals([(0u64, 500u64)])];
        let new = vec![IntervalSet::from_intervals([(0u64, 1000u64)])];
        sim.reconfigure(&plan_transition(&old, &new)); // 500-tuple transfer
        sim.schedule_query(SimTime::from_secs(0), query(&[(0, 300)]));
        drive(&mut sim, |_, _| vec![(NodeId(0), 300)]);
        let m = sim.finish();
        // Only the 300 read tuples count toward throughput.
        assert!((m.read_throughput.total() - 300.0).abs() < 1e-9);
    }
}
