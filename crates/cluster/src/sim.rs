//! The event-driven cluster simulator.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use nashdb_core::ids::{NodeId, QueryId, TableId};
use nashdb_core::transition::{NodeMove, TransitionPlan};
use nashdb_sim::fault::{FaultKind, FaultSchedule};
use nashdb_sim::net::SharedLink;
use nashdb_sim::{EventQueue, SimDuration, SimTime};

use crate::metrics::{Metrics, QueryRecord};

/// The "one big switch" network model: every node owns a NIC link, and all
/// NICs feed one shared core link. A fragment read crosses its server's NIC
/// and then the core on its way back to the client; a transition transfer
/// crosses the core and then the receiving node's NIC before its disk
/// write. Concurrent flows on the same link delay each other FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Tuples per second each node's NIC carries.
    pub nic_tps: u64,
    /// Tuples per second the shared core link carries (the contended
    /// resource: all nodes' traffic crosses it).
    pub core_tps: u64,
}

/// Simulator parameters.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Sequential disk throughput per node, in tuples per second. Both
    /// fragment reads and incoming transfer writes are charged at this rate.
    pub throughput_tps: f64,
    /// Node rent, in 1/100 cent per hour (the paper reports cost in 1/100
    /// cent).
    pub node_cost_per_hour: f64,
    /// Bucket width for the throughput-over-time series.
    pub metrics_bucket: SimDuration,
    /// Optional shared-link network model. `None` (the default) keeps the
    /// legacy free-instantaneous network: reads complete at disk completion
    /// and transfers only cost disk time at the receiver.
    pub network: Option<NetConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            // Loosely an SSD-backed EC2 volume scanning ~1 GB/s of 100-byte
            // tuples.
            throughput_tps: 10_000_000.0,
            node_cost_per_hour: 100.0,
            metrics_bucket: SimDuration::from_secs(60),
            network: None,
        }
    }
}

/// One range scan of a query, against a table's physical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanRange {
    /// The scanned table.
    pub table: TableId,
    /// First tuple (inclusive).
    pub start: u64,
    /// One past the last tuple (exclusive).
    pub end: u64,
}

impl ScanRange {
    /// Creates a scan range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn new(table: TableId, start: u64, end: u64) -> Self {
        assert!(start < end, "empty scan range {start}..{end}");
        ScanRange { table, start, end }
    }

    /// Tuples read.
    pub fn size(&self) -> u64 {
        self.end - self.start
    }
}

/// A query submitted to the cluster: a price (priority) and its range scans.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// The price the user pays for the query, in 1/100 cent.
    pub price: f64,
    /// The scans its plan issues.
    pub scans: Vec<ScanRange>,
    /// Caller tag (e.g. TPC-H template number) carried through to metrics
    /// consumers.
    pub tag: u32,
}

/// What the simulator hands back to its driver.
#[derive(Debug, Clone, PartialEq)]
pub enum DriverEvent {
    /// A query has arrived and must now be routed: the driver must call
    /// [`ClusterSim::dispatch`] (or [`ClusterSim::abandon_query`]) before
    /// pulling the next event.
    QueryArrived {
        /// The query's id.
        id: QueryId,
        /// The query itself.
        query: QueryRequest,
    },
    /// A query finished all of its fragment reads.
    QueryCompleted {
        /// The query's id.
        id: QueryId,
        /// Its end-to-end latency.
        latency: SimDuration,
    },
    /// A node crashed: its queued work is gone and it accepts no dispatches
    /// until (if ever) it restarts. Queries that lost reads follow as
    /// [`DriverEvent::QueryFailed`] events. `node` is the logical slot at
    /// crash time; [`ClusterSim::node_alive`] stays authoritative across
    /// later reconfigurations.
    NodeFailed {
        /// The crashed node's logical slot.
        node: NodeId,
    },
    /// A crashed node restarted and accepts dispatches again.
    NodeRestored {
        /// The restored node's current logical slot.
        node: NodeId,
    },
    /// A query lost a fragment read to a node crash. The driver must either
    /// re-dispatch it ([`ClusterSim::dispatch`] — the original arrival time
    /// is preserved, so the retry's latency includes the lost attempt) or
    /// give up ([`ClusterSim::abandon_query`]) before pulling the next
    /// event.
    QueryFailed {
        /// The failed query.
        id: QueryId,
        /// Attempts made so far (1 after the first failure).
        attempts: u32,
    },
    /// A driver-scheduled timer fired (used for reconfiguration intervals).
    Wakeup {
        /// The tag passed to [`ClusterSim::schedule_wakeup`].
        tag: u64,
    },
    /// No events remain; the simulation is over.
    Finished,
}

/// Why a [`ClusterSim::dispatch`] call was rejected. The simulator is left
/// untouched: no read of the rejected query is enqueued, and a query that
/// was awaiting dispatch still is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchError {
    /// The query already had its reads dispatched (it is running, completed,
    /// or was abandoned).
    DuplicateQuery {
        /// The query dispatched twice.
        id: QueryId,
    },
    /// The query was never scheduled, or has not arrived / failed yet.
    UnknownQuery {
        /// The unknown query.
        id: QueryId,
    },
    /// A read targets a node id outside the current scheme.
    UnknownNode {
        /// The out-of-range node.
        node: NodeId,
    },
    /// A read targets a node that is draining toward retirement.
    InactiveNode {
        /// The retiring node.
        node: NodeId,
    },
    /// A read targets a crashed node.
    FailedNode {
        /// The crashed node.
        node: NodeId,
    },
}

impl std::fmt::Display for DispatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchError::DuplicateQuery { id } => {
                write!(f, "query {id} dispatched twice")
            }
            DispatchError::UnknownQuery { id } => {
                write!(f, "query {id} is not awaiting dispatch")
            }
            DispatchError::UnknownNode { node } => {
                write!(f, "dispatch to unknown node {node}")
            }
            DispatchError::InactiveNode { node } => {
                write!(f, "dispatch to retiring node {node}")
            }
            DispatchError::FailedNode { node } => {
                write!(f, "dispatch to crashed node {node}")
            }
        }
    }
}

impl std::error::Error for DispatchError {}

/// Why a [`ClusterSim::reconfigure`] call rejected its plan. The simulator
/// is left untouched: no node is provisioned, decommissioned, or sent a
/// transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigureError {
    /// A move names an old node outside the current cluster.
    UnknownOldNode {
        /// The out-of-range old node.
        node: NodeId,
    },
    /// Two moves target the same new node slot.
    DuplicateNewNode {
        /// The doubly-assigned new slot.
        node: NodeId,
    },
    /// A new node slot below the plan's maximum is assigned by no move.
    UncoveredNewNode {
        /// The uncovered slot.
        node: NodeId,
    },
}

impl std::fmt::Display for ReconfigureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReconfigureError::UnknownOldNode { node } => {
                write!(f, "transition plan references unknown old node {node}")
            }
            ReconfigureError::DuplicateNewNode { node } => {
                write!(f, "transition plan assigns new node {node} twice")
            }
            ReconfigureError::UncoveredNewNode { node } => {
                write!(f, "transition plan does not cover new node {node}")
            }
        }
    }
}

impl std::error::Error for ReconfigureError {}

#[derive(Debug)]
enum Event {
    Arrival(QueryId),
    JobDone {
        phys: usize,
        /// The node's crash epoch when the job started; a crash bumps the
        /// epoch, invalidating completions already in flight.
        epoch: u64,
    },
    /// A transition transfer finished crossing the network and reaches the
    /// receiving node's disk.
    NetArrival {
        phys: usize,
        epoch: u64,
        tuples: u64,
    },
    /// A fragment read finished crossing the network back to the client.
    NetDelivery {
        id: QueryId,
        attempt: u32,
        tuples: u64,
    },
    /// A scheduled fault fires against a logical slot.
    Fault {
        node: u64,
        kind: FaultKind,
    },
    /// A crashed node finishes rebooting.
    Restart {
        phys: usize,
    },
    Wakeup(u64),
}

#[derive(Debug, Clone, Copy)]
struct Job {
    tuples: u64,
    /// `Some` for a query fragment read (tagged with the dispatch attempt,
    /// so reads of a superseded attempt cannot complete a retried query),
    /// `None` for a transfer write.
    query: Option<(QueryId, u32)>,
}

#[derive(Debug)]
struct PhysNode {
    queue: VecDeque<Job>,
    /// The job currently on the disk, if any.
    in_service: Option<Job>,
    /// When the in-service job started (its service time is completion −
    /// start, which a straggler window can stretch).
    service_started: SimTime,
    /// Tuples of work enqueued and not yet completed (including the
    /// in-service job, in full — queue wait as a router sees it).
    backlog: u64,
    /// Accepts new work (false once decommissioned; it drains then retires).
    active: bool,
    /// Crashed and not (yet) restarted.
    failed: bool,
    /// Bumped at every crash; events carrying an older epoch are stale.
    epoch: u64,
    /// Straggler window: jobs *started* before `slow_until` take
    /// `slow_factor` times longer.
    slow_until: SimTime,
    slow_factor: f64,
    provisioned_at: SimTime,
    retired_at: Option<SimTime>,
    /// Total disk time spent serving jobs.
    busy: SimDuration,
    retired: bool,
}

#[derive(Debug)]
struct QueryState {
    arrival: SimTime,
    /// Which dispatch attempt these reads belong to.
    attempt: u32,
    pending: usize,
    nodes: HashSet<usize>,
}

/// A query waiting for the driver to dispatch (or re-dispatch) it.
#[derive(Debug, Clone, Copy)]
struct AwaitingState {
    arrival: SimTime,
    /// Attempts already made (0 for a fresh arrival).
    attempt: u32,
}

#[derive(Debug)]
struct NetState {
    nic_tps: u64,
    core: SharedLink,
    /// One NIC per physical node (same indexing as `ClusterSim::phys`).
    nics: Vec<SharedLink>,
}

/// The cluster simulator. See the crate docs for the driving protocol.
#[derive(Debug)]
pub struct ClusterSim {
    cfg: ClusterConfig,
    events: EventQueue<Event>,
    phys: Vec<PhysNode>,
    /// Logical scheme node -> physical node.
    logical: Vec<usize>,
    pending: HashMap<QueryId, QueryRequest>,
    /// Arrived (or crash-failed) queries the driver has not dispatched yet.
    awaiting: HashMap<QueryId, AwaitingState>,
    running: HashMap<QueryId, QueryState>,
    /// Queries that finished (completed or abandoned) — re-dispatching one
    /// is a duplicate, not an unknown.
    done: HashSet<QueryId>,
    /// Driver events synthesized by fault handling, drained before the
    /// event queue (FIFO, so NodeFailed precedes its QueryFailed fallout).
    driver_queue: VecDeque<DriverEvent>,
    net: Option<NetState>,
    /// Start of the current window in which some mapped node is down.
    degraded_since: Option<SimTime>,
    metrics: Metrics,
    next_query: u64,
}

impl ClusterSim {
    /// Creates an empty cluster (no nodes; reconfigure to provision).
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(
            cfg.throughput_tps > 0.0 && cfg.throughput_tps.is_finite(),
            "throughput must be positive"
        );
        assert!(
            cfg.node_cost_per_hour >= 0.0 && cfg.node_cost_per_hour.is_finite(),
            "node cost must be nonnegative"
        );
        let metrics = Metrics::new(cfg.metrics_bucket);
        let net = cfg.network.map(|n| NetState {
            nic_tps: n.nic_tps,
            core: SharedLink::new(n.core_tps),
            nics: Vec::new(),
        });
        ClusterSim {
            cfg,
            events: EventQueue::new(),
            phys: Vec::new(),
            logical: Vec::new(),
            pending: HashMap::new(),
            awaiting: HashMap::new(),
            running: HashMap::new(),
            done: HashSet::new(),
            driver_queue: VecDeque::new(),
            net,
            degraded_since: None,
            metrics,
            next_query: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Number of active (logical) nodes.
    pub fn num_nodes(&self) -> usize {
        self.logical.len()
    }

    /// Read access to the metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Queued work per logical node, in tuples — the router's wait
    /// observations.
    pub fn queue_waits(&self) -> Vec<u64> {
        self.logical.iter().map(|&p| self.phys[p].backlog).collect()
    }

    /// Whether the logical node is mapped and not crashed. Routing to a node
    /// for which this returns `false` is rejected by
    /// [`dispatch`](Self::dispatch).
    pub fn node_alive(&self, node: NodeId) -> bool {
        self.logical
            .get(node.index())
            .is_some_and(|&p| !self.phys[p].failed)
    }

    /// Schedules a query to arrive at `at`. Returns its id.
    pub fn schedule_query(&mut self, at: SimTime, query: QueryRequest) -> QueryId {
        let id = QueryId(self.next_query);
        self.next_query += 1;
        self.pending.insert(id, query);
        self.events.schedule(at, Event::Arrival(id));
        id
    }

    /// Schedules a driver timer.
    pub fn schedule_wakeup(&mut self, at: SimTime, tag: u64) {
        self.events.schedule(at, Event::Wakeup(tag));
    }

    /// Schedules every event of a fault schedule. Faults target logical
    /// slots, resolved when they fire; a fault aimed at a slot the cluster
    /// does not have then (or at a node already down) is counted as skipped,
    /// never an error. Call before driving, like
    /// [`schedule_query`](Self::schedule_query).
    pub fn schedule_faults(&mut self, schedule: &FaultSchedule) {
        for ev in schedule.events() {
            self.events.schedule(
                ev.at,
                Event::Fault {
                    node: ev.node,
                    kind: ev.kind,
                },
            );
        }
    }

    /// Gives up on a query the driver cannot (or will not) dispatch — e.g.
    /// every replica of a fragment it needs is on crashed nodes. The query
    /// is recorded as abandoned and produces no [`QueryRecord`]. Returns
    /// `false` if the query was not awaiting dispatch.
    pub fn abandon_query(&mut self, id: QueryId) -> bool {
        if self.awaiting.remove(&id).is_none() {
            return false;
        }
        self.done.insert(id);
        self.metrics.availability.queries_abandoned = self
            .metrics
            .availability
            .queries_abandoned
            .saturating_add(1);
        nashdb_obs::counter_add("cluster.queries_abandoned", 1);
        true
    }

    /// Routes an arrived (or crash-failed) query: one `(node, tuples)` read
    /// per fragment request. Must be called exactly once per `QueryArrived`
    /// or `QueryFailed` event, before the next
    /// [`next_event`](Self::next_event) call.
    ///
    /// # Errors
    /// Rejects the dispatch — leaving the simulator untouched — if the query
    /// is not awaiting dispatch (never scheduled, or already dispatched,
    /// completed, or abandoned), a node id is out of range, a target node is
    /// draining toward retirement, or a target node is crashed.
    pub fn dispatch(&mut self, id: QueryId, reads: &[(NodeId, u64)]) -> Result<(), DispatchError> {
        if self.running.contains_key(&id) || self.done.contains(&id) {
            return Err(DispatchError::DuplicateQuery { id });
        }
        let Some(&waiting) = self.awaiting.get(&id) else {
            return Err(DispatchError::UnknownQuery { id });
        };
        // Validate every read before enqueueing any, so a rejected dispatch
        // leaves no partial work behind.
        let mut targets = Vec::with_capacity(reads.len());
        for &(node, _) in reads {
            let phys = *self
                .logical
                .get(node.index())
                .ok_or(DispatchError::UnknownNode { node })?;
            if self.phys[phys].failed {
                return Err(DispatchError::FailedNode { node });
            }
            if !self.phys[phys].active {
                return Err(DispatchError::InactiveNode { node });
            }
            targets.push(phys);
        }
        self.awaiting.remove(&id);
        if waiting.attempt > 0 {
            self.metrics.availability.queries_retried =
                self.metrics.availability.queries_retried.saturating_add(1);
            nashdb_obs::counter_add("cluster.queries_retried", 1);
        }
        if reads.is_empty() {
            // Nothing to read: completes instantly.
            self.complete_query(
                id,
                &QueryState {
                    arrival: waiting.arrival,
                    attempt: waiting.attempt,
                    pending: 0,
                    nodes: HashSet::new(),
                },
            );
            return Ok(());
        }
        let mut state = QueryState {
            arrival: waiting.arrival,
            attempt: waiting.attempt,
            pending: reads.len(),
            nodes: HashSet::new(),
        };
        for (&(_, tuples), &phys) in reads.iter().zip(&targets) {
            state.nodes.insert(phys);
            self.enqueue_job(
                phys,
                Job {
                    tuples,
                    query: Some((id, waiting.attempt)),
                },
            );
        }
        self.running.insert(id, state);
        nashdb_obs::counter_add("cluster.reads_dispatched", reads.len() as u64);
        Ok(())
    }

    /// Applies a transition plan: reused nodes keep their queues (and
    /// receive their transfer as a queued write — crossing the network first
    /// when the network model is on), fresh nodes are provisioned,
    /// decommissioned nodes drain and retire.
    ///
    /// # Errors
    /// Rejects the plan — leaving the simulator untouched — if it references
    /// an old node outside the current cluster, assigns a new slot twice, or
    /// leaves a new slot unassigned.
    pub fn reconfigure(&mut self, plan: &TransitionPlan) -> Result<(), ReconfigureError> {
        let new_count = plan
            .moves
            .iter()
            .filter_map(|m| match m {
                NodeMove::Reuse { new, .. } | NodeMove::Provision { new, .. } => {
                    Some(new.index() + 1)
                }
                NodeMove::Decommission { .. } => None,
            })
            .max()
            .unwrap_or(0);

        // Validate the whole plan before touching anything, so a rejected
        // plan leaves no partial transition behind.
        let mut covered = vec![false; new_count];
        for m in &plan.moves {
            match *m {
                NodeMove::Reuse { old, new, .. } => {
                    if old.index() >= self.logical.len() {
                        return Err(ReconfigureError::UnknownOldNode { node: old });
                    }
                    if std::mem::replace(&mut covered[new.index()], true) {
                        return Err(ReconfigureError::DuplicateNewNode { node: new });
                    }
                }
                NodeMove::Provision { new, .. } => {
                    if std::mem::replace(&mut covered[new.index()], true) {
                        return Err(ReconfigureError::DuplicateNewNode { node: new });
                    }
                }
                NodeMove::Decommission { old } => {
                    if old.index() >= self.logical.len() {
                        return Err(ReconfigureError::UnknownOldNode { node: old });
                    }
                }
            }
        }
        if let Some(slot) = covered.iter().position(|&c| !c) {
            return Err(ReconfigureError::UncoveredNewNode {
                node: NodeId(u64::try_from(slot).unwrap_or(u64::MAX)),
            });
        }

        let now = self.now();
        let old_logical = std::mem::take(&mut self.logical);
        let mut new_logical = vec![usize::MAX; new_count];
        let mut total_transfer = 0u64;

        for m in &plan.moves {
            match *m {
                NodeMove::Reuse { old, new, transfer } => {
                    let phys = old_logical[old.index()];
                    new_logical[new.index()] = phys;
                    if transfer > 0 {
                        self.enqueue_transfer(phys, transfer);
                        total_transfer = total_transfer.saturating_add(transfer);
                    }
                }
                NodeMove::Provision { new, transfer } => {
                    let phys = self.phys.len();
                    self.phys.push(PhysNode {
                        queue: VecDeque::new(),
                        in_service: None,
                        service_started: now,
                        backlog: 0,
                        active: true,
                        failed: false,
                        epoch: 0,
                        slow_until: SimTime::ZERO,
                        slow_factor: 1.0,
                        provisioned_at: now,
                        retired_at: None,
                        busy: SimDuration::ZERO,
                        retired: false,
                    });
                    if let Some(net) = &mut self.net {
                        net.nics.push(SharedLink::new(net.nic_tps));
                    }
                    new_logical[new.index()] = phys;
                    if transfer > 0 {
                        self.enqueue_transfer(phys, transfer);
                        total_transfer = total_transfer.saturating_add(transfer);
                    }
                }
                NodeMove::Decommission { old } => {
                    let phys = old_logical[old.index()];
                    self.phys[phys].active = false;
                    self.maybe_retire(phys, now);
                }
            }
        }
        self.logical = new_logical;
        self.metrics.peak_nodes = self.metrics.peak_nodes.max(self.logical.len());
        self.metrics.reconfigurations += 1;
        self.metrics.transfers.push((now, total_transfer));
        nashdb_obs::counter_add("cluster.reconfigurations", 1);
        nashdb_obs::counter_add("cluster.transfer_tuples", total_transfer);
        nashdb_obs::gauge_set("cluster.nodes", self.logical.len() as f64);
        self.update_degraded(now);
        Ok(())
    }

    /// Advances the simulation to the next driver-relevant event.
    pub fn next_event(&mut self) -> DriverEvent {
        loop {
            if let Some(ev) = self.driver_queue.pop_front() {
                return ev;
            }
            let Some((now, event)) = self.events.pop() else {
                return DriverEvent::Finished;
            };
            match event {
                Event::Arrival(id) => {
                    // Arrivals are scheduled exactly once per id, so the
                    // lookup only misses if internal state was corrupted;
                    // skipping is the panic-free fallback. Kept in sync
                    // with `take_coincident_arrivals`, which replays this
                    // arm for batch collection.
                    if let Some(query) = self.pending.remove(&id) {
                        self.awaiting.insert(
                            id,
                            AwaitingState {
                                arrival: now,
                                attempt: 0,
                            },
                        );
                        return DriverEvent::QueryArrived { id, query };
                    }
                }
                Event::Wakeup(tag) => return DriverEvent::Wakeup { tag },
                Event::JobDone { phys, epoch } => {
                    if let Some(done) = self.job_done(phys, epoch, now) {
                        return done;
                    }
                }
                Event::NetArrival {
                    phys,
                    epoch,
                    tuples,
                } => {
                    let node = &self.phys[phys];
                    if node.epoch == epoch && !node.failed && !node.retired {
                        self.enqueue_job(
                            phys,
                            Job {
                                tuples,
                                query: None,
                            },
                        );
                    } else {
                        // The receiver crashed while the transfer was in
                        // flight: the copy is lost mid-transition.
                        self.metrics.availability.tuples_lost =
                            self.metrics.availability.tuples_lost.saturating_add(tuples);
                        nashdb_obs::counter_add("cluster.tuples_lost", tuples);
                    }
                }
                Event::NetDelivery {
                    id,
                    attempt,
                    tuples,
                } => {
                    if let Some(done) = self.deliver_read(id, attempt, tuples, now) {
                        return done;
                    }
                }
                Event::Fault { node, kind } => self.apply_fault(now, node, kind),
                Event::Restart { phys } => self.restart_node(now, phys),
            }
        }
    }

    /// Collects every further query arriving at *exactly* the current
    /// simulated time, in event order — the batch companion to a
    /// [`DriverEvent::QueryArrived`] just returned by
    /// [`next_event`](Self::next_event).
    ///
    /// Coincident arrivals are common under integer clocks and bursty
    /// workloads; handing them to the driver as one batch lets it route
    /// them in a single [`ScanRouter::route_batch`] call instead of paying
    /// per-scan setup. Popping stops at the first event that is not an
    /// arrival at `now()`, and never while an internal driver event is
    /// queued (those must reach the driver in order). Each collected query
    /// goes through exactly the state transition `next_event`'s arrival arm
    /// performs, so driving with or without batching is event-for-event
    /// identical.
    ///
    /// [`ScanRouter::route_batch`]: nashdb_core::routing::ScanRouter::route_batch
    pub fn take_coincident_arrivals(&mut self) -> Vec<(QueryId, QueryRequest)> {
        let mut batch = Vec::new();
        let now = self.events.now();
        while self.driver_queue.is_empty() {
            match self.events.peek() {
                Some((at, &Event::Arrival(id))) if at == now => {
                    self.events.pop();
                    // Mirror of `next_event`'s arrival arm: a pending miss
                    // means corrupted internal state; skip, don't panic.
                    if let Some(query) = self.pending.remove(&id) {
                        self.awaiting.insert(
                            id,
                            AwaitingState {
                                arrival: now,
                                attempt: 0,
                            },
                        );
                        batch.push((id, query));
                    }
                }
                _ => break,
            }
        }
        batch
    }

    /// Ends the run: closes the degraded-time window, accrues cost for every
    /// non-retired node up to the current time, and returns the metrics.
    pub fn finish(mut self) -> Metrics {
        let end = self.now();
        if let Some(since) = self.degraded_since.take() {
            self.metrics.availability.degraded += end.since(since);
        }
        for i in 0..self.phys.len() {
            if !self.phys[i].retired {
                self.accrue(i, end);
            }
        }
        nashdb_obs::gauge_set(
            "cluster.degraded_ms",
            self.metrics.availability.degraded.as_millis() as f64,
        );
        self.metrics
    }

    /// Service time of `tuples` on `phys`'s disk, stretched if the node is
    /// inside a straggler window when the job starts.
    fn service_time(&self, phys: usize, tuples: u64) -> SimDuration {
        let secs = tuples as f64 / self.cfg.throughput_tps;
        let node = &self.phys[phys];
        if self.events.now() < node.slow_until {
            SimDuration::from_secs_f64(secs * node.slow_factor)
        } else {
            SimDuration::from_secs_f64(secs)
        }
    }

    fn enqueue_job(&mut self, phys: usize, job: Job) {
        let now = self.events.now();
        let service = self.service_time(phys, job.tuples);
        let node = &mut self.phys[phys];
        node.backlog = node.backlog.saturating_add(job.tuples);
        if node.in_service.is_none() {
            node.in_service = Some(job);
            node.service_started = now;
            let epoch = node.epoch;
            self.events
                .schedule(now + service, Event::JobDone { phys, epoch });
        } else {
            node.queue.push_back(job);
        }
    }

    /// Routes a transition transfer toward `phys`'s disk: directly when the
    /// network model is off, across core + receiver NIC when it is on. A
    /// transfer aimed at a node that is already down is lost outright.
    fn enqueue_transfer(&mut self, phys: usize, tuples: u64) {
        if self.phys[phys].failed {
            self.metrics.availability.tuples_lost =
                self.metrics.availability.tuples_lost.saturating_add(tuples);
            nashdb_obs::counter_add("cluster.tuples_lost", tuples);
            return;
        }
        let now = self.events.now();
        let epoch = self.phys[phys].epoch;
        if let Some(net) = &mut self.net {
            let off_core = net.core.transmit(now, tuples);
            let arrives = net.nics[phys].transmit(off_core, tuples);
            self.events.schedule(
                arrives,
                Event::NetArrival {
                    phys,
                    epoch,
                    tuples,
                },
            );
        } else {
            self.enqueue_job(
                phys,
                Job {
                    tuples,
                    query: None,
                },
            );
        }
    }

    fn job_done(&mut self, phys: usize, epoch: u64, now: SimTime) -> Option<DriverEvent> {
        if self.phys[phys].epoch != epoch {
            return None; // completion from before a crash: the job is gone
        }
        let node = &mut self.phys[phys];
        let Some(job) = node.in_service.take() else {
            // An epoch-matched JobDone always has a job in service; skipping
            // is the panic-free fallback.
            return None;
        };
        node.backlog = node.backlog.saturating_sub(job.tuples);
        node.busy += now.since(node.service_started);
        // Start the next job, if any.
        if let Some(next) = self.phys[phys].queue.pop_front() {
            let service = self.service_time(phys, next.tuples);
            let node = &mut self.phys[phys];
            node.in_service = Some(next);
            node.service_started = now;
            let epoch = node.epoch;
            self.events
                .schedule(now + service, Event::JobDone { phys, epoch });
        } else {
            self.maybe_retire(phys, now);
        }

        let (id, attempt) = job.query?; // transfer write: nothing to report
        if !self.read_is_fresh(id, attempt) {
            // The query failed (and was retried or abandoned) while this
            // read sat in the disk queue: served tuples nobody wants.
            self.waste_read();
            return None;
        }
        if let Some(net) = &mut self.net {
            // The data still has to cross the server's NIC and the core
            // link before the client has it.
            let off_nic = net.nics[phys].transmit(now, job.tuples);
            let delivered = net.core.transmit(off_nic, job.tuples);
            self.events.schedule(
                delivered,
                Event::NetDelivery {
                    id,
                    attempt,
                    tuples: job.tuples,
                },
            );
            None
        } else {
            self.deliver_read(id, attempt, job.tuples, now)
        }
    }

    /// A fragment read reaches the client: counts toward throughput and,
    /// when it is the query's last read, completes the query.
    fn deliver_read(
        &mut self,
        id: QueryId,
        attempt: u32,
        tuples: u64,
        now: SimTime,
    ) -> Option<DriverEvent> {
        if !self.read_is_fresh(id, attempt) {
            self.waste_read();
            return None;
        }
        self.metrics.read_throughput.add(now, tuples as f64);
        let state = self.running.get_mut(&id)?;
        state.pending = state.pending.saturating_sub(1);
        if state.pending > 0 {
            return None;
        }
        let state = self.running.remove(&id)?;
        Some(self.complete_query(id, &state))
    }

    /// Whether a read tagged `(id, attempt)` still belongs to a live query
    /// attempt (the query is running and has not been failed-and-retried).
    fn read_is_fresh(&self, id: QueryId, attempt: u32) -> bool {
        self.running.get(&id).is_some_and(|s| s.attempt == attempt)
    }

    fn waste_read(&mut self) {
        self.metrics.availability.reads_wasted =
            self.metrics.availability.reads_wasted.saturating_add(1);
        nashdb_obs::counter_add("cluster.reads_wasted", 1);
    }

    fn complete_query(&mut self, id: QueryId, state: &QueryState) -> DriverEvent {
        let now = self.now();
        self.done.insert(id);
        let record = QueryRecord {
            id,
            arrival: state.arrival,
            completion: now,
            span: u32::try_from(state.nodes.len()).unwrap_or(u32::MAX),
        };
        self.metrics.queries.push(record);
        // Latency is simulated time, so this histogram is deterministic per
        // seed (unlike the wall-clock `*_ns` stage timings).
        nashdb_obs::counter_add("cluster.queries_completed", 1);
        nashdb_obs::record("cluster.query_latency_ns", record.latency().as_nanos());
        nashdb_obs::record("cluster.query_span", u64::from(record.span));
        DriverEvent::QueryCompleted {
            id,
            latency: record.latency(),
        }
    }

    fn apply_fault(&mut self, now: SimTime, slot: u64, kind: FaultKind) {
        let phys = usize::try_from(slot)
            .ok()
            .and_then(|s| self.logical.get(s).copied());
        let Some(phys) = phys else {
            self.skip_fault();
            return;
        };
        if self.phys[phys].failed || self.phys[phys].retired {
            self.skip_fault();
            return;
        }
        match kind {
            FaultKind::Crash => self.crash_node(now, slot, phys, None),
            FaultKind::CrashRestart { down_for } => {
                self.crash_node(now, slot, phys, Some(down_for));
            }
            FaultKind::Straggler { slowdown, duration } => {
                let node = &mut self.phys[phys];
                node.slow_factor = slowdown.max(1.0);
                node.slow_until = now + duration;
            }
        }
    }

    /// A fault whose target slot is unmapped (or whose node is already down
    /// or retired) is dropped, so one schedule replays against clusters of
    /// any size.
    fn skip_fault(&mut self) {
        self.metrics.availability.faults_skipped =
            self.metrics.availability.faults_skipped.saturating_add(1);
        nashdb_obs::counter_add("cluster.faults_skipped", 1);
    }

    fn crash_node(
        &mut self,
        now: SimTime,
        slot: u64,
        phys: usize,
        restart_after: Option<SimDuration>,
    ) {
        let node = &mut self.phys[phys];
        node.failed = true;
        node.epoch = node.epoch.saturating_add(1);
        node.slow_until = SimTime::ZERO;
        node.slow_factor = 1.0;
        // Everything queued or on the disk evaporates with the node.
        let mut dropped: Vec<Job> = node.in_service.take().into_iter().collect();
        dropped.extend(node.queue.drain(..));
        let lost_tuples = node.backlog;
        node.backlog = 0;
        if let Some(net) = &mut self.net {
            net.nics[phys].reset();
        }
        let avail = &mut self.metrics.availability;
        avail.node_crashes = avail.node_crashes.saturating_add(1);
        avail.jobs_lost = avail.jobs_lost.saturating_add(dropped.len() as u64);
        avail.tuples_lost = avail.tuples_lost.saturating_add(lost_tuples);
        nashdb_obs::counter_add("cluster.node_crashes", 1);
        nashdb_obs::counter_add("cluster.jobs_lost", dropped.len() as u64);
        nashdb_obs::counter_add("cluster.tuples_lost", lost_tuples);
        // Queries whose current attempt lost a read here can no longer
        // complete: hand them back to the driver. BTreeSet gives a stable
        // id order for the QueryFailed events.
        let mut victims: BTreeSet<QueryId> = BTreeSet::new();
        for job in &dropped {
            if let Some((id, attempt)) = job.query {
                if self.read_is_fresh(id, attempt) {
                    victims.insert(id);
                }
            }
        }
        self.driver_queue
            .push_back(DriverEvent::NodeFailed { node: NodeId(slot) });
        for id in victims {
            let Some(state) = self.running.remove(&id) else {
                continue;
            };
            let attempts = state.attempt.saturating_add(1);
            self.awaiting.insert(
                id,
                AwaitingState {
                    arrival: state.arrival,
                    attempt: attempts,
                },
            );
            self.metrics.availability.queries_failed =
                self.metrics.availability.queries_failed.saturating_add(1);
            nashdb_obs::counter_add("cluster.queries_failed", 1);
            self.driver_queue
                .push_back(DriverEvent::QueryFailed { id, attempts });
        }
        if let Some(down_for) = restart_after {
            self.events
                .schedule(now + down_for, Event::Restart { phys });
        }
        // A decommissioned node that crashes has drained the hard way.
        self.maybe_retire(phys, now);
        self.update_degraded(now);
    }

    fn restart_node(&mut self, now: SimTime, phys: usize) {
        let node = &mut self.phys[phys];
        if node.retired || !node.failed {
            // Decommissioned while down (or state drift): stays dead.
            return;
        }
        node.failed = false;
        self.metrics.availability.node_restarts =
            self.metrics.availability.node_restarts.saturating_add(1);
        nashdb_obs::counter_add("cluster.node_restarts", 1);
        if let Some(slot) = self.logical.iter().position(|&p| p == phys) {
            self.driver_queue.push_back(DriverEvent::NodeRestored {
                node: NodeId(u64::try_from(slot).unwrap_or(u64::MAX)),
            });
        }
        self.update_degraded(now);
    }

    /// Opens or closes the degraded-mode window: degraded while any logical
    /// slot maps to a crashed node (the scheme promises replicas the
    /// cluster cannot serve).
    fn update_degraded(&mut self, now: SimTime) {
        let degraded = self.logical.iter().any(|&p| self.phys[p].failed);
        match self.degraded_since {
            None if degraded => self.degraded_since = Some(now),
            Some(since) if !degraded => {
                self.metrics.availability.degraded += now.since(since);
                self.degraded_since = None;
            }
            _ => {}
        }
    }

    fn maybe_retire(&mut self, phys: usize, now: SimTime) {
        let node = &self.phys[phys];
        if !node.active && node.in_service.is_none() && node.queue.is_empty() && !node.retired {
            self.accrue(phys, now);
        }
    }

    fn accrue(&mut self, phys: usize, until: SimTime) {
        let node = &mut self.phys[phys];
        debug_assert!(!node.retired);
        let hours = until.since(node.provisioned_at).as_secs_f64() / 3600.0;
        self.metrics.total_cost += hours * self.cfg.node_cost_per_hour;
        node.retired_at = Some(until);
        node.retired = true;
        let utilization = (node.busy.as_secs_f64()
            / until.since(node.provisioned_at).as_secs_f64().max(1e-12))
        .min(1.0);
        self.metrics.node_utilization.push(utilization);
        // Parts-per-million so the busy fraction fits an integer histogram.
        nashdb_obs::record(
            "cluster.node_utilization_ppm",
            nashdb_core::num::saturating_u64(utilization * 1e6),
        );
        nashdb_obs::gauge_set("cluster.total_cost", self.metrics.total_cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nashdb_core::transition::{plan_transition, IntervalSet};
    use nashdb_sim::fault::FaultEvent;

    fn cfg() -> ClusterConfig {
        ClusterConfig {
            throughput_tps: 1_000.0,    // 1k tuples/sec: easy arithmetic
            node_cost_per_hour: 3600.0, // 1 unit per second
            metrics_bucket: SimDuration::from_secs(10),
            network: None,
        }
    }

    fn net_cfg(nic_tps: u64, core_tps: u64) -> ClusterConfig {
        ClusterConfig {
            network: Some(NetConfig { nic_tps, core_tps }),
            ..cfg()
        }
    }

    fn provision(n: usize) -> TransitionPlan {
        let new: Vec<IntervalSet> = (0..n).map(|_| IntervalSet::new()).collect();
        plan_transition(&[], &new)
    }

    fn query(scans: &[(u64, u64)]) -> QueryRequest {
        QueryRequest {
            price: 1.0,
            scans: scans
                .iter()
                .map(|&(s, e)| ScanRange::new(TableId(0), s, e))
                .collect(),
            tag: 0,
        }
    }

    fn crash(at_secs: u64, node: u64) -> FaultEvent {
        FaultEvent {
            at: SimTime::from_secs(at_secs),
            node,
            kind: FaultKind::Crash,
        }
    }

    /// Drives the sim to completion, dispatching every query to `route`.
    fn drive(
        sim: &mut ClusterSim,
        mut route: impl FnMut(&ClusterSim, &QueryRequest) -> Vec<(NodeId, u64)>,
    ) {
        loop {
            match sim.next_event() {
                DriverEvent::QueryArrived { id, query } => {
                    let reads = route(sim, &query);
                    sim.dispatch(id, &reads).unwrap();
                }
                DriverEvent::Finished => break,
                _ => {}
            }
        }
    }

    #[test]
    fn single_query_latency_is_service_time() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(1)).unwrap();
        sim.schedule_query(SimTime::from_secs(1), query(&[(0, 500)]));
        drive(&mut sim, |_, _| vec![(NodeId(0), 500)]);
        let m = sim.finish();
        assert_eq!(m.queries.len(), 1);
        // 500 tuples at 1000 tps = 0.5 s.
        assert!((m.queries[0].latency().as_secs_f64() - 0.5).abs() < 1e-9);
        assert_eq!(m.queries[0].span, 1);
    }

    #[test]
    fn fifo_queueing_delays_second_query() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(1)).unwrap();
        sim.schedule_query(SimTime::from_secs(0), query(&[(0, 1000)]));
        sim.schedule_query(SimTime::from_secs(0), query(&[(0, 1000)]));
        drive(&mut sim, |_, _| vec![(NodeId(0), 1000)]);
        let m = sim.finish();
        let mut lats: Vec<f64> = m
            .queries
            .iter()
            .map(|q| q.latency().as_secs_f64())
            .collect();
        lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((lats[0] - 1.0).abs() < 1e-9);
        assert!((lats[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_reads_reduce_latency_and_count_span() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(2)).unwrap();
        sim.schedule_query(SimTime::from_secs(0), query(&[(0, 500), (500, 1000)]));
        drive(&mut sim, |_, _| vec![(NodeId(0), 500), (NodeId(1), 500)]);
        let m = sim.finish();
        assert!((m.queries[0].latency().as_secs_f64() - 0.5).abs() < 1e-9);
        assert_eq!(m.queries[0].span, 2);
    }

    #[test]
    fn queue_waits_reflect_backlog() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(2)).unwrap();
        sim.schedule_query(SimTime::from_secs(0), query(&[(0, 700)]));
        // Dispatch on arrival, then inspect waits immediately.
        match sim.next_event() {
            DriverEvent::QueryArrived { id, .. } => {
                sim.dispatch(id, &[(NodeId(1), 700)]).unwrap();
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(sim.queue_waits(), vec![0, 700]);
    }

    #[test]
    fn cost_accrues_per_node_hour() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(3)).unwrap();
        // Let the clock advance 100 s with an idle timer.
        sim.schedule_wakeup(SimTime::from_secs(100), 0);
        assert!(matches!(sim.next_event(), DriverEvent::Wakeup { tag: 0 }));
        assert!(matches!(sim.next_event(), DriverEvent::Finished));
        let m = sim.finish();
        // 3 nodes × 100 s × 1 cost/s.
        assert!((m.total_cost - 300.0).abs() < 1e-6, "cost {}", m.total_cost);
    }

    #[test]
    fn decommissioned_node_drains_then_stops_costing() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(2)).unwrap();
        sim.schedule_query(SimTime::from_secs(0), query(&[(0, 1000)]));
        match sim.next_event() {
            DriverEvent::QueryArrived { id, .. } => sim.dispatch(id, &[(NodeId(1), 1000)]).unwrap(),
            other => panic!("unexpected {other:?}"),
        }
        // Scale down to one node: keep node 0, decommission busy node 1.
        let old = vec![
            IntervalSet::from_intervals([(0u64, 10u64)]),
            IntervalSet::from_intervals([(50u64, 60u64)]),
        ];
        let new = vec![IntervalSet::from_intervals([(0u64, 10u64)])];
        sim.reconfigure(&plan_transition(&old, &new)).unwrap();
        assert_eq!(sim.num_nodes(), 1);
        // The draining node still completes the query.
        let mut completed = false;
        loop {
            match sim.next_event() {
                DriverEvent::QueryCompleted { .. } => completed = true,
                DriverEvent::Finished => break,
                _ => {}
            }
        }
        assert!(completed);
        // Much later, only the surviving node accrues cost.
        let m = sim.finish();
        // Node 1 retired at t=1 s (drain), node 0 at t=1 s (end of events):
        // total 2 node-seconds.
        assert!((m.total_cost - 2.0).abs() < 1e-6, "cost {}", m.total_cost);
    }

    #[test]
    fn transfers_occupy_disk_and_are_counted() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(1)).unwrap();
        // Grow to 2 nodes; the new node must copy 2000 tuples.
        let old = vec![IntervalSet::from_intervals([(0u64, 2000u64)])];
        let new = vec![
            IntervalSet::from_intervals([(0u64, 2000u64)]),
            IntervalSet::from_intervals([(0u64, 2000u64)]),
        ];
        sim.reconfigure(&plan_transition(&old, &new)).unwrap();
        // A query dispatched to the new node waits behind the transfer.
        sim.schedule_query(
            SimTime::ZERO + SimDuration::from_millis(1),
            query(&[(0, 100)]),
        );
        drive(&mut sim, |_, _| vec![(NodeId(1), 100)]);
        let m = sim.finish();
        assert_eq!(m.total_transfer(), 2000);
        assert_eq!(m.reconfigurations, 2);
        // Latency ≈ remaining transfer (2 s − 1 ms) + own read (0.1 s).
        let lat = m.queries[0].latency().as_secs_f64();
        assert!((lat - 2.099).abs() < 1e-6, "latency {lat}");
    }

    #[test]
    fn reused_nodes_keep_their_queues() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(2)).unwrap();
        sim.schedule_query(SimTime::from_secs(0), query(&[(0, 1000)]));
        match sim.next_event() {
            DriverEvent::QueryArrived { id, .. } => sim.dispatch(id, &[(NodeId(0), 1000)]).unwrap(),
            other => panic!("unexpected {other:?}"),
        }
        // Identity-ish reconfigure: same two nodes.
        let sets = vec![
            IntervalSet::from_intervals([(0u64, 10u64)]),
            IntervalSet::from_intervals([(20u64, 30u64)]),
        ];
        sim.reconfigure(&plan_transition(&sets, &sets)).unwrap();
        // Backlog survived the transition.
        assert_eq!(sim.queue_waits()[0], 1000);
    }

    #[test]
    fn empty_dispatch_completes_immediately() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(1)).unwrap();
        sim.schedule_query(SimTime::from_secs(5), query(&[(0, 10)]));
        match sim.next_event() {
            DriverEvent::QueryArrived { id, .. } => sim.dispatch(id, &[]).unwrap(),
            other => panic!("unexpected {other:?}"),
        }
        let m = sim.finish();
        assert_eq!(m.queries.len(), 1);
        assert_eq!(m.queries[0].latency(), SimDuration::ZERO);
    }

    #[test]
    fn double_dispatch_is_rejected() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(1)).unwrap();
        sim.schedule_query(SimTime::from_secs(0), query(&[(0, 10)]));
        match sim.next_event() {
            DriverEvent::QueryArrived { id, .. } => {
                sim.dispatch(id, &[(NodeId(0), 10)]).unwrap();
                assert_eq!(
                    sim.dispatch(id, &[(NodeId(0), 10)]),
                    Err(DispatchError::DuplicateQuery { id })
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dispatch_of_unscheduled_query_is_unknown() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(1)).unwrap();
        // Never scheduled at all.
        let ghost = QueryId(99);
        assert_eq!(
            sim.dispatch(ghost, &[(NodeId(0), 10)]),
            Err(DispatchError::UnknownQuery { id: ghost })
        );
        // Scheduled but not yet arrived: still unknown to dispatch.
        let early = sim.schedule_query(SimTime::from_secs(5), query(&[(0, 10)]));
        assert_eq!(
            sim.dispatch(early, &[(NodeId(0), 10)]),
            Err(DispatchError::UnknownQuery { id: early })
        );
        // Nothing was enqueued by the rejected dispatches.
        assert_eq!(sim.queue_waits(), vec![0]);
    }

    #[test]
    fn dispatch_after_completion_is_duplicate() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(1)).unwrap();
        let id = sim.schedule_query(SimTime::from_secs(0), query(&[(0, 10)]));
        drive(&mut sim, |_, _| vec![(NodeId(0), 10)]);
        // The query completed long ago; a late re-dispatch must not enqueue
        // phantom reads or double-count metrics.
        assert_eq!(
            sim.dispatch(id, &[(NodeId(0), 10)]),
            Err(DispatchError::DuplicateQuery { id })
        );
        assert_eq!(sim.queue_waits(), vec![0]);
        let m = sim.finish();
        assert_eq!(m.queries.len(), 1);
    }

    #[test]
    fn backlog_saturates_instead_of_overflowing() {
        // Regression: `backlog += tuples` used to be unchecked, so a second
        // u64::MAX-sized read wrapped the counter around.
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(1)).unwrap();
        sim.schedule_query(SimTime::from_secs(0), query(&[(0, 1)]));
        match sim.next_event() {
            DriverEvent::QueryArrived { id, .. } => {
                sim.dispatch(id, &[(NodeId(0), u64::MAX), (NodeId(0), u64::MAX)])
                    .unwrap();
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(sim.queue_waits(), vec![u64::MAX]);
    }

    #[test]
    fn malformed_plans_are_typed_errors() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(1)).unwrap();
        // Reuse of a node the cluster does not have.
        let bad_old = TransitionPlan {
            moves: vec![NodeMove::Reuse {
                old: NodeId(5),
                new: NodeId(0),
                transfer: 0,
            }],
            total_transfer: 0,
        };
        assert_eq!(
            sim.reconfigure(&bad_old),
            Err(ReconfigureError::UnknownOldNode { node: NodeId(5) })
        );
        // A plan that leaves slot 0 unassigned.
        let uncovered = TransitionPlan {
            moves: vec![NodeMove::Provision {
                new: NodeId(1),
                transfer: 0,
            }],
            total_transfer: 0,
        };
        assert_eq!(
            sim.reconfigure(&uncovered),
            Err(ReconfigureError::UncoveredNewNode { node: NodeId(0) })
        );
        // Two moves landing on the same new slot.
        let duplicate = TransitionPlan {
            moves: vec![
                NodeMove::Provision {
                    new: NodeId(0),
                    transfer: 0,
                },
                NodeMove::Reuse {
                    old: NodeId(0),
                    new: NodeId(0),
                    transfer: 0,
                },
            ],
            total_transfer: 0,
        };
        assert_eq!(
            sim.reconfigure(&duplicate),
            Err(ReconfigureError::DuplicateNewNode { node: NodeId(0) })
        );
        // Every rejection left the cluster untouched.
        assert_eq!(sim.num_nodes(), 1);
        assert_eq!(sim.metrics().reconfigurations, 1);
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(2)).unwrap();
        // Node 0 works 1 s of a 2 s run; node 1 stays idle.
        sim.schedule_query(SimTime::from_secs(0), query(&[(0, 1000)]));
        match sim.next_event() {
            DriverEvent::QueryArrived { id, .. } => sim.dispatch(id, &[(NodeId(0), 1000)]).unwrap(),
            other => panic!("unexpected {other:?}"),
        }
        sim.schedule_wakeup(SimTime::from_secs(2), 0);
        while !matches!(sim.next_event(), DriverEvent::Finished) {}
        let m = sim.finish();
        let mut u = m.node_utilization.clone();
        u.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(u.len(), 2);
        assert!(u[0].abs() < 1e-9, "idle node utilization {}", u[0]);
        assert!((u[1] - 0.5).abs() < 1e-6, "busy node utilization {}", u[1]);
    }

    #[test]
    fn peak_nodes_tracks_largest_cluster() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(3)).unwrap();
        assert_eq!(sim.metrics().peak_nodes, 3);
        // Shrink to 1: the peak must remember 3.
        let old: Vec<IntervalSet> = (0..3)
            .map(|i| IntervalSet::from_intervals([(i * 10, i * 10 + 5)]))
            .collect();
        let new = vec![IntervalSet::from_intervals([(0u64, 5u64)])];
        sim.reconfigure(&plan_transition(&old, &new)).unwrap();
        assert_eq!(sim.num_nodes(), 1);
        assert_eq!(sim.metrics().peak_nodes, 3);
    }

    #[test]
    fn throughput_series_counts_read_tuples_only() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(1)).unwrap();
        let old = vec![IntervalSet::from_intervals([(0u64, 500u64)])];
        let new = vec![IntervalSet::from_intervals([(0u64, 1000u64)])];
        sim.reconfigure(&plan_transition(&old, &new)).unwrap(); // 500-tuple transfer
        sim.schedule_query(SimTime::from_secs(0), query(&[(0, 300)]));
        drive(&mut sim, |_, _| vec![(NodeId(0), 300)]);
        let m = sim.finish();
        // Only the 300 read tuples count toward throughput.
        assert!((m.read_throughput.total() - 300.0).abs() < 1e-9);
    }

    // ------------------------------------------------------------------
    // Failure and network model
    // ------------------------------------------------------------------

    #[test]
    fn crash_fails_inflight_query_and_retry_completes() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(2)).unwrap();
        sim.schedule_query(SimTime::from_secs(0), query(&[(0, 1000)]));
        // Node 1 dies mid-read at t=0.5 s; the read would have finished at 1 s.
        sim.schedule_faults(&FaultSchedule::from_events(vec![crash(0, 1)]));
        // (crash at t=0 sorts before arrival? No: both t=0, crash scheduled
        // after the arrival, FIFO keeps arrival first — but make it explicit.)
        let mut saw_node_failed = false;
        let mut completions = 0;
        loop {
            match sim.next_event() {
                DriverEvent::QueryArrived { id, .. } => {
                    sim.dispatch(id, &[(NodeId(1), 1000)]).unwrap();
                }
                DriverEvent::NodeFailed { node } => {
                    assert_eq!(node, NodeId(1));
                    saw_node_failed = true;
                    assert!(!sim.node_alive(NodeId(1)));
                    assert!(sim.node_alive(NodeId(0)));
                }
                DriverEvent::QueryFailed { id, attempts } => {
                    assert_eq!(attempts, 1);
                    // Routing to the dead node is now rejected ...
                    assert_eq!(
                        sim.dispatch(id, &[(NodeId(1), 1000)]),
                        Err(DispatchError::FailedNode { node: NodeId(1) })
                    );
                    // ... so retry on the survivor.
                    sim.dispatch(id, &[(NodeId(0), 1000)]).unwrap();
                }
                DriverEvent::QueryCompleted { .. } => completions += 1,
                DriverEvent::Finished => break,
                _ => {}
            }
        }
        assert!(saw_node_failed);
        assert_eq!(completions, 1);
        let m = sim.finish();
        // Exactly one record — the retry, with the original arrival time.
        assert_eq!(m.queries.len(), 1);
        assert_eq!(m.queries[0].arrival, SimTime::from_secs(0));
        // Crash fired at t=0 (before any service), retry read takes 1 s.
        assert!((m.queries[0].latency().as_secs_f64() - 1.0).abs() < 1e-9);
        let a = &m.availability;
        assert_eq!(a.node_crashes, 1);
        assert_eq!(a.queries_failed, 1);
        assert_eq!(a.queries_retried, 1);
        assert_eq!(a.queries_abandoned, 0);
        assert_eq!(a.jobs_lost, 1);
    }

    #[test]
    fn crash_restart_brings_the_node_back() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(2)).unwrap();
        sim.schedule_faults(&FaultSchedule::from_events(vec![FaultEvent {
            at: SimTime::from_secs(1),
            node: 1,
            kind: FaultKind::CrashRestart {
                down_for: SimDuration::from_secs(2),
            },
        }]));
        sim.schedule_wakeup(SimTime::from_secs(10), 0);
        let mut restored = false;
        loop {
            match sim.next_event() {
                DriverEvent::NodeFailed { node } => {
                    assert_eq!(node, NodeId(1));
                    assert!(!sim.node_alive(NodeId(1)));
                }
                DriverEvent::NodeRestored { node } => {
                    assert_eq!(node, NodeId(1));
                    assert!(sim.node_alive(NodeId(1)));
                    restored = true;
                }
                DriverEvent::Finished => break,
                _ => {}
            }
        }
        assert!(restored);
        let m = sim.finish();
        assert_eq!(m.availability.node_crashes, 1);
        assert_eq!(m.availability.node_restarts, 1);
        // Down from t=1 to t=3.
        assert_eq!(m.availability.degraded, SimDuration::from_secs(2));
    }

    #[test]
    fn straggler_window_stretches_service() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(1)).unwrap();
        sim.schedule_faults(&FaultSchedule::from_events(vec![FaultEvent {
            at: SimTime::from_secs(0),
            node: 0,
            kind: FaultKind::Straggler {
                slowdown: 4.0,
                duration: SimDuration::from_secs(10),
            },
        }]));
        // Arrives inside the window: 1 s of work takes 4 s.
        sim.schedule_query(SimTime::from_secs(1), query(&[(0, 1000)]));
        // Arrives after the window: full speed again.
        sim.schedule_query(SimTime::from_secs(20), query(&[(0, 1000)]));
        drive(&mut sim, |_, _| vec![(NodeId(0), 1000)]);
        let m = sim.finish();
        assert_eq!(m.queries.len(), 2);
        assert!((m.queries[0].latency().as_secs_f64() - 4.0).abs() < 1e-9);
        assert!((m.queries[1].latency().as_secs_f64() - 1.0).abs() < 1e-9);
        // Stragglers degrade nothing permanently and fail nothing.
        assert_eq!(m.availability.queries_failed, 0);
        assert_eq!(m.availability.node_crashes, 0);
    }

    #[test]
    fn fault_on_unmapped_slot_is_skipped() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(1)).unwrap();
        sim.schedule_faults(&FaultSchedule::from_events(vec![crash(1, 7)]));
        while !matches!(sim.next_event(), DriverEvent::Finished) {}
        let m = sim.finish();
        assert_eq!(m.availability.faults_skipped, 1);
        assert_eq!(m.availability.node_crashes, 0);
    }

    #[test]
    fn abandoned_query_is_counted_not_recorded() {
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(1)).unwrap();
        sim.schedule_query(SimTime::from_secs(0), query(&[(0, 1000)]));
        sim.schedule_faults(&FaultSchedule::from_events(vec![crash(0, 0)]));
        loop {
            match sim.next_event() {
                DriverEvent::QueryArrived { id, .. } => {
                    sim.dispatch(id, &[(NodeId(0), 1000)]).unwrap();
                }
                DriverEvent::QueryFailed { id, .. } => {
                    // Only replica is gone: give up.
                    assert!(sim.abandon_query(id));
                    // A second abandon is a no-op.
                    assert!(!sim.abandon_query(id));
                }
                DriverEvent::Finished => break,
                _ => {}
            }
        }
        let m = sim.finish();
        assert_eq!(m.queries.len(), 0);
        assert_eq!(m.availability.queries_abandoned, 1);
        assert_eq!(m.availability.queries_failed, 1);
    }

    #[test]
    fn stale_reads_of_a_failed_attempt_are_wasted_not_counted() {
        // A query with reads on two nodes loses one to a crash; the
        // surviving node's read must not complete the retried query or
        // count toward throughput.
        let mut sim = ClusterSim::new(cfg());
        sim.reconfigure(&provision(3)).unwrap();
        sim.schedule_query(SimTime::from_secs(0), query(&[(0, 4000)]));
        // Node 1 dies at t=1; node 0's half (2000 tuples) finishes at t=2.
        sim.schedule_faults(&FaultSchedule::from_events(vec![crash(1, 1)]));
        let mut completions = 0;
        loop {
            match sim.next_event() {
                DriverEvent::QueryArrived { id, .. } => {
                    sim.dispatch(id, &[(NodeId(0), 2000), (NodeId(1), 2000)])
                        .unwrap();
                }
                DriverEvent::QueryFailed { id, .. } => {
                    // Retry entirely on node 2.
                    sim.dispatch(id, &[(NodeId(2), 4000)]).unwrap();
                }
                DriverEvent::QueryCompleted { .. } => completions += 1,
                DriverEvent::Finished => break,
                _ => {}
            }
        }
        let m = sim.finish();
        assert_eq!(completions, 1);
        assert_eq!(m.queries.len(), 1);
        // Node 0's orphaned read was served but wasted.
        assert_eq!(m.availability.reads_wasted, 1);
        // Throughput counts the retry's 4000 tuples, not the stale 2000.
        assert!(
            (m.read_throughput.total() - 4000.0).abs() < 1e-9,
            "throughput {}",
            m.read_throughput.total()
        );
    }

    #[test]
    fn network_read_crosses_nic_then_core() {
        // 1000-tuple read: disk 1 s, NIC 1 s, core 0.5 s → latency 2.5 s.
        let mut sim = ClusterSim::new(net_cfg(1_000, 2_000));
        sim.reconfigure(&provision(1)).unwrap();
        sim.schedule_query(SimTime::from_secs(0), query(&[(0, 1000)]));
        drive(&mut sim, |_, _| vec![(NodeId(0), 1000)]);
        let m = sim.finish();
        assert_eq!(m.queries.len(), 1);
        assert!((m.queries[0].latency().as_secs_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn core_link_contention_serializes_concurrent_reads() {
        // Two parallel 1000-tuple reads on separate nodes: disks and NICs
        // run concurrently (done t=2), but the shared core carries them one
        // after the other (t=3 and t=4).
        let mut sim = ClusterSim::new(net_cfg(1_000, 1_000));
        sim.reconfigure(&provision(2)).unwrap();
        sim.schedule_query(SimTime::from_secs(0), query(&[(0, 1000)]));
        sim.schedule_query(SimTime::from_secs(0), query(&[(0, 1000)]));
        let mut next = 0u64;
        drive(&mut sim, |_, _| {
            let node = NodeId(next % 2);
            next += 1;
            vec![(node, 1000)]
        });
        let m = sim.finish();
        let mut lats: Vec<f64> = m
            .queries
            .iter()
            .map(|q| q.latency().as_secs_f64())
            .collect();
        lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((lats[0] - 3.0).abs() < 1e-9, "latencies {lats:?}");
        assert!((lats[1] - 4.0).abs() < 1e-9, "latencies {lats:?}");
    }

    #[test]
    fn transfer_crosses_network_and_dies_with_receiver() {
        // Provision a second node with a 2000-tuple transfer (core 1 s, NIC
        // 2 s → arrives at disk t=3), but crash the receiver at t=1: the
        // copy is lost mid-transition and never becomes a disk job.
        let mut sim = ClusterSim::new(net_cfg(1_000, 2_000));
        sim.reconfigure(&provision(1)).unwrap();
        let old = vec![IntervalSet::from_intervals([(0u64, 2000u64)])];
        let new = vec![
            IntervalSet::from_intervals([(0u64, 2000u64)]),
            IntervalSet::from_intervals([(0u64, 2000u64)]),
        ];
        sim.reconfigure(&plan_transition(&old, &new)).unwrap();
        sim.schedule_faults(&FaultSchedule::from_events(vec![crash(1, 1)]));
        while !matches!(sim.next_event(), DriverEvent::Finished) {}
        let m = sim.finish();
        assert_eq!(m.availability.node_crashes, 1);
        assert_eq!(m.availability.tuples_lost, 2000);
        // The transfer was initiated (and charged) but never served.
        assert_eq!(m.total_transfer(), 2000);
    }

    #[test]
    fn same_fault_schedule_is_deterministic() {
        let run = || {
            let mut sim = ClusterSim::new(net_cfg(2_000, 4_000));
            sim.reconfigure(&provision(3)).unwrap();
            for i in 0..12u64 {
                sim.schedule_query(SimTime::from_secs(i), query(&[(0, 900)]));
            }
            sim.schedule_faults(&FaultSchedule::from_events(vec![
                crash(4, 1),
                FaultEvent {
                    at: SimTime::from_secs(6),
                    node: 2,
                    kind: FaultKind::Straggler {
                        slowdown: 3.0,
                        duration: SimDuration::from_secs(4),
                    },
                },
            ]));
            let mut next = 0u64;
            loop {
                match sim.next_event() {
                    DriverEvent::QueryArrived { id, .. } => {
                        let mut node = NodeId(next % 3);
                        next += 1;
                        if !sim.node_alive(node) {
                            node = NodeId(0);
                        }
                        sim.dispatch(id, &[(node, 900)]).unwrap();
                    }
                    DriverEvent::QueryFailed { id, .. } => {
                        sim.dispatch(id, &[(NodeId(0), 900)]).unwrap();
                    }
                    DriverEvent::Finished => break,
                    _ => {}
                }
            }
            sim.finish()
        };
        let a = run();
        let b = run();
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.availability, b.availability);
        assert!((a.total_cost - b.total_cost).abs() < 1e-12);
    }
}
