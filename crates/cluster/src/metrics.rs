//! Measurements collected while a simulation runs — the raw material for
//! every figure in the paper's evaluation (§10).

use nashdb_sim::stats::{Percentiles, TimeSeries};
use nashdb_sim::{SimDuration, SimTime};

use nashdb_core::ids::QueryId;

/// One completed query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryRecord {
    /// The query.
    pub id: QueryId,
    /// When it arrived.
    pub arrival: SimTime,
    /// When its last fragment read finished.
    pub completion: SimTime,
    /// Number of distinct nodes that served it (its span).
    pub span: u32,
}

impl QueryRecord {
    /// The query's latency.
    pub fn latency(&self) -> SimDuration {
        self.completion.since(self.arrival)
    }
}

/// Availability accounting for a run with faults injected. All counters
/// stay zero on a fault-free run, so legacy snapshots are unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Availability {
    /// Query attempts that lost a fragment read to a node crash and were
    /// handed back to the driver.
    pub queries_failed: u64,
    /// Failed queries the driver re-dispatched.
    pub queries_retried: u64,
    /// Failed queries the driver gave up on (no live replica set).
    pub queries_abandoned: u64,
    /// Node crash events applied (with or without restart).
    pub node_crashes: u64,
    /// Crashed nodes that came back.
    pub node_restarts: u64,
    /// Scheduled faults dropped because their target slot was unmapped or
    /// the node was already down/retired.
    pub faults_skipped: u64,
    /// Disk jobs (reads and transfer writes) evaporated by crashes.
    pub jobs_lost: u64,
    /// Tuples of queued work and in-flight transfers lost to crashes.
    pub tuples_lost: u64,
    /// Fragment reads served for an attempt that had already failed (work
    /// done for nobody).
    pub reads_wasted: u64,
    /// Total simulated time during which some logical node mapped to a
    /// crashed physical node — the scheme promised replicas the cluster
    /// could not serve.
    pub degraded: SimDuration,
}

/// All measurements from one simulation run.
#[derive(Debug)]
pub struct Metrics {
    /// Per-query records in completion order.
    pub queries: Vec<QueryRecord>,
    /// Tuples of query reads completed, bucketed by completion time (the
    /// paper's throughput-over-time, Fig. 11).
    pub read_throughput: TimeSeries,
    /// Tuples copied by reconfigurations, with the time each transfer batch
    /// was initiated (Fig. 9b).
    pub transfers: Vec<(SimTime, u64)>,
    /// Total monetary cost accrued so far, in 1/100 cent (node-hours ×
    /// hourly rate). Finalized by the simulator at end of run.
    pub total_cost: f64,
    /// Number of reconfigurations applied.
    pub reconfigurations: u64,
    /// Largest active node count seen over the run.
    pub peak_nodes: usize,
    /// Per retired node: fraction of its provisioned lifetime its disk was
    /// busy (pushed when the node retires or the run ends).
    pub node_utilization: Vec<f64>,
    /// Availability accounting (all-zero when no faults were injected).
    pub availability: Availability,
}

impl Metrics {
    /// Empty metrics with the given throughput bucket width.
    pub fn new(bucket: SimDuration) -> Self {
        Metrics {
            queries: Vec::new(),
            read_throughput: TimeSeries::new(bucket),
            transfers: Vec::new(),
            total_cost: 0.0,
            reconfigurations: 0,
            peak_nodes: 0,
            node_utilization: Vec::new(),
            availability: Availability::default(),
        }
    }

    /// Mean query latency in seconds (0 if no queries completed).
    pub fn mean_latency_secs(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries
            .iter()
            .map(|q| q.latency().as_secs_f64())
            .sum::<f64>()
            / self.queries.len() as f64
    }

    /// Latency percentile in seconds (`None` if no queries completed).
    pub fn latency_percentile_secs(&self, p: f64) -> Option<f64> {
        let mut ps = Percentiles::new();
        for q in &self.queries {
            ps.push(q.latency().as_secs_f64());
        }
        ps.percentile(p)
    }

    /// Mean query span.
    pub fn mean_span(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries.iter().map(|q| q.span as f64).sum::<f64>() / self.queries.len() as f64
    }

    /// Total tuples moved by all reconfigurations.
    pub fn total_transfer(&self) -> u64 {
        self.transfers.iter().map(|(_, t)| t).sum()
    }

    /// The run reduced to the cost-vs-latency point the paper's Fig. 7
    /// plots (and the scenario matrix sweeps).
    pub fn cost_latency(&self) -> CostLatency {
        CostLatency {
            cost: self.total_cost,
            mean_latency_secs: self.mean_latency_secs(),
            p99_latency_secs: self.latency_percentile_secs(99.0).unwrap_or(0.0),
        }
    }
}

/// One simulation run's position in cost-vs-latency space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostLatency {
    /// Total monetary cost, in 1/100 cent.
    pub cost: f64,
    /// Mean query latency, seconds (0 if no queries completed).
    pub mean_latency_secs: f64,
    /// 99th-percentile query latency, seconds (0 if no queries completed).
    pub p99_latency_secs: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_aggregates() {
        let mut m = Metrics::new(SimDuration::from_secs(60));
        for (i, lat_ms) in [100u64, 200, 300, 400].iter().enumerate() {
            m.queries.push(QueryRecord {
                id: QueryId(i as u64),
                arrival: SimTime::from_secs(0),
                completion: SimTime::ZERO + SimDuration::from_millis(*lat_ms),
                span: (u32::try_from(i).unwrap() % 2) + 1,
            });
        }
        assert!((m.mean_latency_secs() - 0.25).abs() < 1e-9);
        assert!((m.latency_percentile_secs(100.0).unwrap() - 0.4).abs() < 1e-9);
        assert!((m.mean_span() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::new(SimDuration::from_secs(60));
        assert!(m.mean_latency_secs().abs() < 1e-12);
        assert_eq!(m.latency_percentile_secs(99.0), None);
        assert_eq!(m.total_transfer(), 0);
        assert!(m.mean_span().abs() < 1e-12);
    }

    #[test]
    fn cost_latency_point_matches_aggregates() {
        let mut m = Metrics::new(SimDuration::from_secs(60));
        m.total_cost = 12.5;
        for (i, lat_ms) in [100u64, 200, 300, 400].iter().enumerate() {
            m.queries.push(QueryRecord {
                id: QueryId(i as u64),
                arrival: SimTime::from_secs(0),
                completion: SimTime::ZERO + SimDuration::from_millis(*lat_ms),
                span: 1,
            });
        }
        let p = m.cost_latency();
        assert!((p.cost - 12.5).abs() < 1e-12);
        assert!((p.mean_latency_secs - m.mean_latency_secs()).abs() < 1e-12);
        assert!((p.p99_latency_secs - m.latency_percentile_secs(99.0).unwrap()).abs() < 1e-12);
        // Empty run: well-defined zero point, not NaN.
        let empty = Metrics::new(SimDuration::from_secs(60)).cost_latency();
        assert!(empty.mean_latency_secs.abs() < 1e-12);
        assert!(empty.p99_latency_secs.abs() < 1e-12);
    }

    #[test]
    fn transfer_totals() {
        let mut m = Metrics::new(SimDuration::from_secs(60));
        m.transfers.push((SimTime::from_secs(10), 100));
        m.transfers.push((SimTime::from_secs(20), 50));
        assert_eq!(m.total_transfer(), 150);
    }
}
