//! NashDB proper: the value-estimation → fragmentation → replication
//! pipeline behind the [`Distributor`] interface.

use std::collections::HashMap;

use nashdb_cluster::QueryRequest;
use nashdb_core::economics::NodeSpec;
use nashdb_core::fragment::{
    fragment_stats, optimal_fragmentation, split_oversized, FragmentRange, FragmentStats,
    Fragmentation, GreedyFragmenter,
};
use nashdb_core::ids::{FragmentId, TableId};
use nashdb_core::num::{saturating_u64, usize_from};
use nashdb_core::replication::{decide_replicas, ReplicationPolicy};
use nashdb_core::value::{PricedScan, TupleValueEstimator};
use nashdb_workload::Database;

use crate::scheme::{DistScheme, Distributor, GlobalFragment};

/// NashDB configuration.
#[derive(Debug, Clone, Copy)]
pub struct NashDbConfig {
    /// Scan window size `|W|` (the paper's experiments use 50).
    pub window: usize,
    /// Node economics: rent per reconfiguration period (1/100 cent) and
    /// disk capacity (tuples).
    pub spec: NodeSpec,
    /// Fragment cap per table (`maxFrags`), the paper's "average fragment
    /// fills a disk block" knob.
    pub max_frags_per_table: usize,
    /// Greedy split/merge rounds per reconfiguration.
    pub greedy_rounds: usize,
    /// Use the exact DP fragmenter instead of greedy (small tables only).
    pub use_optimal_fragmentation: bool,
    /// Safety cap on replicas per fragment.
    pub max_replicas: u64,
    /// Maximum fragment size in tuples (the paper's "average fragment fits
    /// a disk block": fragments are the unit of a replica *and* of a read,
    /// so oversized uniform-value regions are split to this cap to keep
    /// single reads bounded). Always additionally capped by `spec.disk`.
    pub max_fragment_tuples: u64,
    /// Minimum relative error improvement for a refragmentation change
    /// (paper footnote 2); damps boundary churn from window noise.
    pub refrag_sensitivity: f64,
}

impl Default for NashDbConfig {
    fn default() -> Self {
        NashDbConfig {
            window: 50,
            spec: NodeSpec::new(100.0, 50_000_000), // 50 GB-equivalent nodes
            max_frags_per_table: 64,
            greedy_rounds: 96,
            use_optimal_fragmentation: false,
            max_replicas: 512,
            max_fragment_tuples: u64::MAX,
            refrag_sensitivity: 0.05,
        }
    }
}

struct TableState {
    tuples: u64,
    estimator: TupleValueEstimator,
    fragmenter: GreedyFragmenter,
}

/// One table's slice of the fragmentation stage: value chunks -> greedy (or
/// exact DP) fragmentation -> disk-fit split -> per-fragment statistics.
/// Stats come back with table-local ids; the caller re-identifies them
/// globally. Runs on a fan-out worker thread, so it takes everything it
/// needs by argument and touches no distributor state beyond its table.
fn table_fragments(
    cfg: &NashDbConfig,
    converged: bool,
    t_idx: usize,
    t: &mut TableState,
) -> Vec<FragmentStats> {
    let chunks = {
        let _chunks = nashdb_obs::span("value_chunks");
        t.estimator.chunks(t.tuples)
    };
    let rounds = if converged {
        cfg.greedy_rounds
    } else {
        cfg.greedy_rounds.max(24 * cfg.max_frags_per_table)
    };
    let frag = if cfg.use_optimal_fragmentation {
        // The estimator always emits contiguous chunks over a nonempty
        // table, so the fallback only guards a broken estimator; debug
        // builds surface it.
        let frag = optimal_fragmentation(&chunks, cfg.max_frags_per_table);
        debug_assert!(frag.is_ok(), "table {t_idx}: {:?}", frag.as_ref().err());
        frag.unwrap_or_else(|_| Fragmentation::single(t.tuples.max(1)))
    } else {
        t.fragmenter.run(&chunks, rounds);
        t.fragmenter.fragmentation()
    };
    #[cfg(feature = "invariant-audit")]
    {
        let audit = nashdb_core::audit::audit_value_tree(&t.estimator);
        assert!(
            audit.is_ok(),
            "table {t_idx} value-tree audit failed: {audit:?}"
        );
        let audit =
            nashdb_core::audit::audit_fragmentation(&frag, &chunks, cfg.max_frags_per_table);
        assert!(
            audit.is_ok(),
            "table {t_idx} fragmentation audit failed: {audit:?}"
        );
    }
    #[cfg(not(feature = "invariant-audit"))]
    let _ = t_idx;
    let frag = split_oversized(&frag, cfg.spec.disk.min(cfg.max_fragment_tuples.max(1)));
    let stats = fragment_stats(&frag, &chunks);
    debug_assert!(stats.is_ok(), "table {t_idx}: {:?}", stats.as_ref().err());
    stats.unwrap_or_default()
}

/// The NashDB system: per-table tuple value estimators and fragmenters, plus
/// the economic replication manager.
pub struct NashDbDistributor {
    cfg: NashDbConfig,
    tables: Vec<TableState>,
    /// False until the first scheme computation, which runs the greedy
    /// fragmenter to convergence; later calls apply only `greedy_rounds`
    /// incremental rounds so fragment boundaries (and therefore replica
    /// placements) drift slowly and transitions stay cheap.
    converged: bool,
    /// Replica counts of the previous scheme, for hysteresis: a fragment
    /// whose `Ideal(f)` stayed within ±25 % (min ±1) of its old count keeps
    /// the old count. Inside window-sampling noise the marginal replica is
    /// profit-neutral either way, so the damped counts remain
    /// equilibrium-compatible — and without damping, count flutter re-sorts
    /// the packing order every period and churns the whole placement (the
    /// paper's <200 MB/transition measurements imply its schemes were
    /// similarly stable hour over hour).
    prev_counts: HashMap<(TableId, FragmentRange), u64>,
    /// The persistent replica placement: per node, the fragments (by table
    /// and range) it hosts. Re-running BFFD from scratch each period would
    /// re-deal most of the cluster whenever a count or boundary changes;
    /// instead existing assignments are kept, BFFD places only the deltas,
    /// and under-filled nodes are evacuated (see DESIGN.md §5).
    placement: Vec<Vec<PlacementKey>>,
}

/// A fragment's stable identity across reconfigurations.
type PlacementKey = (TableId, FragmentRange);

impl std::fmt::Debug for NashDbDistributor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NashDbDistributor")
            .field("cfg", &self.cfg)
            .field("tables", &self.tables.len())
            .field("converged", &self.converged)
            .field("nodes", &self.placement.len())
            .finish_non_exhaustive()
    }
}

impl NashDbDistributor {
    /// Creates the system for a database.
    pub fn new(db: &Database, cfg: NashDbConfig) -> Self {
        assert!(cfg.window > 0, "window must be nonzero");
        assert!(cfg.max_frags_per_table > 0, "maxFrags must be nonzero");
        let tables = db
            .tables
            .iter()
            .map(|t| TableState {
                tuples: t.tuples,
                estimator: TupleValueEstimator::new(cfg.window),
                fragmenter: GreedyFragmenter::new(t.tuples, cfg.max_frags_per_table)
                    .with_min_relative_gain(cfg.refrag_sensitivity),
            })
            .collect();
        NashDbDistributor {
            cfg,
            tables,
            converged: false,
            prev_counts: HashMap::new(),
            placement: Vec::new(),
        }
    }

    /// Placement-preserving replica allocation: keeps every still-valid
    /// assignment, removes stale/surplus replicas, first-fit-places the
    /// deficit (highest replica counts first, hash-scattered within a
    /// count, as in [`pack_bffd`](nashdb_core::replication::pack_bffd)),
    /// evacuates under-filled nodes, and drops empty ones.
    fn place(
        &mut self,
        globals: &[GlobalFragment],
        decisions: &[nashdb_core::replication::ReplicationDecision],
    ) -> Vec<Vec<usize>> {
        let disk = self.cfg.spec.disk;
        let key_of = |i: usize| (globals[i].table, globals[i].range);
        let mut desired: HashMap<PlacementKey, u64> = HashMap::new();
        let mut index: HashMap<PlacementKey, usize> = HashMap::new();
        for (i, d) in decisions.iter().enumerate() {
            desired.insert(key_of(i), d.replicas);
            index.insert(key_of(i), i);
        }
        let size_of = |k: &PlacementKey| k.1.size();

        // 1. Drop replicas of fragments that no longer exist, remembering
        //    what each node lost: a boundary shift renames a fragment, and
        //    the replacement should land where the old data already sits so
        //    the transition only ships the boundary delta.
        let mut removed: Vec<Vec<PlacementKey>> = Vec::with_capacity(self.placement.len());
        for node in &mut self.placement {
            let mut lost = Vec::new();
            node.retain(|k| {
                if desired.contains_key(k) {
                    true
                } else {
                    lost.push(*k);
                    false
                }
            });
            removed.push(lost);
        }

        // 2. Current counts.
        let mut current: HashMap<PlacementKey, u64> = HashMap::new();
        for node in &self.placement {
            for k in node {
                *current.entry(*k).or_default() += 1;
            }
        }

        // 3. Remove surplus replicas, from the last nodes backwards (they
        //    are the most recently opened and emptiest on average).
        for node in self.placement.iter_mut().rev() {
            node.retain(|k| {
                // Every retained key was counted in step 2, so the lookup
                // always succeeds; an absent key is simply kept.
                let Some(cur) = current.get_mut(k) else {
                    return true;
                };
                if *cur > desired[k] {
                    *cur -= 1;
                    false
                } else {
                    true
                }
            });
        }

        // 4. Place the deficit: highest counts first, hash-scattered within
        //    a count class so physically adjacent fragments spread.
        let scatter = |k: &PlacementKey| {
            (k.1.start ^ k.1.end.rotate_left(17) ^ k.0.get().rotate_left(41))
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        };
        let mut used: Vec<u64> = self
            .placement
            .iter()
            .map(|node| node.iter().map(size_of).sum())
            .collect();
        let mut deficit: Vec<(PlacementKey, u64)> = decisions
            .iter()
            .enumerate()
            .filter_map(|(i, d)| {
                let k = key_of(i);
                let have = current.get(&k).copied().unwrap_or(0);
                (d.replicas > have).then_some((k, d.replicas - have))
            })
            .collect();
        deficit.sort_by_key(|(k, _)| (std::cmp::Reverse(desired[k]), scatter(k)));
        let overlap = |a: &PlacementKey, b: &PlacementKey| -> u64 {
            if a.0 == b.0 {
                a.1.overlap(b.1.start, b.1.end)
            } else {
                0
            }
        };
        for (k, missing) in deficit {
            let size = size_of(&k);
            for _ in 0..missing {
                // Prefer the node that just lost the most overlapping data
                // (it already stores most of these tuples); fall back to
                // first fit.
                let fits = |n: usize| used[n] + size <= disk && !self.placement[n].contains(&k);
                let slot = (0..self.placement.len())
                    .filter(|&n| fits(n))
                    .map(|n| (removed[n].iter().map(|r| overlap(r, &k)).sum::<u64>(), n))
                    .filter(|&(ov, _)| ov > 0)
                    .max_by_key(|&(ov, n)| (ov, std::cmp::Reverse(n)))
                    .map(|(_, n)| n)
                    .or_else(|| (0..self.placement.len()).find(|&n| fits(n)));
                match slot {
                    Some(n) => {
                        self.placement[n].push(k);
                        used[n] = used[n].saturating_add(size);
                        // The reclaimed overlap is no longer "lost" there.
                        if let Some(pos) = removed[n].iter().position(|r| overlap(r, &k) > 0) {
                            removed[n].swap_remove(pos);
                        }
                    }
                    None => {
                        self.placement.push(vec![k]);
                        used.push(size);
                        removed.push(Vec::new());
                    }
                }
            }
        }

        // 5. Evacuate under-filled nodes (< 25% of disk) whose contents fit
        //    elsewhere, so drift cannot slowly strand half-empty rentals.
        for n in (0..self.placement.len()).rev() {
            if used[n] == 0 || used[n] >= disk / 4 {
                continue;
            }
            let mut moves: Vec<(usize, PlacementKey)> = Vec::new();
            let mut tentative = used.clone();
            let mut ok = true;
            for k in &self.placement[n] {
                let size = size_of(k);
                let target = (0..self.placement.len()).find(|&m| {
                    m != n
                        && tentative[m] + size <= disk
                        && !self.placement[m].contains(k)
                        && !moves.iter().any(|(t, mk)| *t == m && mk == k)
                });
                match target {
                    Some(m) => {
                        tentative[m] += size;
                        moves.push((m, *k));
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                for (m, k) in moves {
                    self.placement[m].push(k);
                    used[m] = used[m].saturating_add(size_of(&k));
                }
                self.placement[n].clear();
                used[n] = 0;
            }
        }

        // 6. Drop empty nodes and emit global indices.
        self.placement.retain(|node| !node.is_empty());
        // The incremental packer stands in for `pack_bffd` here, so it
        // reports the same packing metrics the from-scratch packer would.
        nashdb_obs::gauge_set("packing.nodes", self.placement.len() as f64);
        nashdb_obs::counter_add(
            "packing.placements",
            self.placement.iter().map(|node| node.len() as u64).sum(),
        );
        for node in &self.placement {
            nashdb_obs::record("packing.node_fill_tuples", node.iter().map(size_of).sum());
        }
        self.placement
            .iter()
            .map(|node| node.iter().map(|k| index[k]).collect())
            .collect()
    }

    /// The configuration in force.
    pub fn config(&self) -> &NashDbConfig {
        &self.cfg
    }

    /// Total summed fragment error across all tables for the *current*
    /// fragmentation against the *current* value estimates — the quantity
    /// the paper's Fig. 6 compares across fragmenters.
    pub fn current_total_error(&self) -> f64 {
        self.tables
            .iter()
            .map(|t| {
                let chunks = t.estimator.chunks(t.tuples);
                nashdb_core::fragment::ChunkPrefix::new(&chunks).map_or(0.0, |prefix| {
                    t.fragmenter.fragmentation().total_error(&prefix)
                })
            })
            .sum()
    }
}

impl Distributor for NashDbDistributor {
    fn observe(&mut self, query: &QueryRequest) {
        // Eq. 1: split the query's price across its scans proportionally to
        // scan size, then feed each scan to its table's estimator.
        //
        // The per-tuple income a scan pays is Price(s)/Size(s); a scan much
        // smaller than a read block would pay an astronomically high rate
        // per tuple even though serving it still costs a block read (§2:
        // scans fetch whole blocks). Flooring the denominator at the block
        // size keeps one tiny scan in the window from spiking V(x) by
        // orders of magnitude and yo-yoing the cluster size.
        let block = self.cfg.max_fragment_tuples.min(self.cfg.spec.disk).max(1);
        let total: u64 = query.scans.iter().map(|s| s.size()).sum();
        if total == 0 {
            return;
        }
        for s in &query.scans {
            let mut price = query.price * s.size() as f64 / total as f64;
            let table = &mut self.tables[usize_from(s.table.get())];
            let end = s.end.min(table.tuples);
            if s.start < end {
                let size = end - s.start;
                let effective = size.max(block.min(table.tuples));
                price *= size as f64 / effective as f64;
                table
                    .estimator
                    .observe(PricedScan::new(s.start, end, price));
            }
        }
    }

    fn scheme(&mut self) -> DistScheme {
        let _scheme = nashdb_obs::span("scheme");
        let policy = ReplicationPolicy::new(self.cfg.window, self.cfg.spec)
            .with_max_replicas(self.cfg.max_replicas);

        // Per table: value chunks -> fragmentation -> disk-fit split ->
        // fragment statistics, re-identified globally. Tables are
        // independent (separate estimators and fragmenters), so the stage
        // fans out across cores; worker metrics are captured per table via
        // `nashdb_obs::fork` and absorbed in table order below, which is
        // exactly the order the serial loop recorded them in — same-seed
        // runs stay byte-identical under `scrub_timings` at any core count.
        let fragment_span = nashdb_obs::span("fragment");
        let cfg = self.cfg;
        let converged = self.converged;
        let fork = nashdb_obs::fork();
        // The persistent pool takes owned jobs, so the tables travel by
        // value and come back (in table order) alongside the results.
        let tables = std::mem::take(&mut self.tables);
        let (tables, per_table) = nashdb_par::map_mut_vec(tables, 1, move |t_idx, t| {
            fork.run(|| table_fragments(&cfg, converged, t_idx, t))
        });
        self.tables = tables;
        let mut globals: Vec<GlobalFragment> = Vec::new();
        let mut stats: Vec<FragmentStats> = Vec::new();
        for (t_idx, (table_stats, metrics)) in per_table.into_iter().enumerate() {
            if let Some(m) = metrics {
                nashdb_obs::absorb(&m);
            }
            for s in table_stats {
                let global_id = FragmentId(globals.len() as u64);
                globals.push(GlobalFragment {
                    table: nashdb_core::ids::TableId(t_idx as u64),
                    range: s.range,
                });
                stats.push(FragmentStats { id: global_id, ..s });
            }
        }

        self.converged = true;
        drop(fragment_span);

        // Eq. 9 replica counts, damped by hysteresis against the previous
        // scheme.
        let replication_span = nashdb_obs::span("replication");
        let mut decisions = decide_replicas(&stats, &policy);
        for d in &mut decisions {
            let key = (globals[usize_from(d.id.get())].table, d.range);
            if let Some(&old) = self.prev_counts.get(&key) {
                // Counting noise in a |W|-scan window moves V(f) (hence
                // Ideal) by ~±25% between periods; inside that band the
                // marginal replica is profit-neutral either way, so keep
                // the old count and a quiet cluster.
                let band = saturating_u64(((old as f64) * 0.25).ceil().max(1.0));
                if d.replicas.abs_diff(old) <= band {
                    d.replicas = old;
                }
            }
        }
        self.prev_counts = decisions
            .iter()
            .map(|d| ((globals[usize_from(d.id.get())].table, d.range), d.replicas))
            .collect();
        drop(replication_span);

        let nodes = {
            let _place = nashdb_obs::span("place");
            self.place(&globals, &decisions)
        };
        nashdb_obs::gauge_set("distributor.fragments", globals.len() as f64);
        nashdb_obs::gauge_set("distributor.nodes", nodes.len() as f64);
        #[cfg(feature = "invariant-audit")]
        {
            let as_frags: Vec<Vec<FragmentId>> = nodes
                .iter()
                .map(|node| node.iter().map(|&i| FragmentId(i as u64)).collect())
                .collect();
            let audit =
                nashdb_core::audit::audit_packing(&as_frags, &decisions, self.cfg.spec.disk);
            assert!(audit.is_ok(), "packing audit failed: {audit:?}");
        }
        DistScheme::new(globals, nodes)
    }

    fn name(&self) -> &'static str {
        "nashdb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nashdb_cluster::ScanRange;
    use nashdb_core::ids::TableId;

    fn db() -> Database {
        Database::new([("fact", 1_000_000), ("dim", 10_000)])
    }

    fn query(price: f64, scans: &[(u64, u64, u64)]) -> QueryRequest {
        QueryRequest {
            price,
            scans: scans
                .iter()
                .map(|&(t, s, e)| ScanRange::new(TableId(t), s, e))
                .collect(),
            tag: 0,
        }
    }

    fn small_cfg() -> NashDbConfig {
        NashDbConfig {
            spec: NodeSpec::new(100.0, 600_000),
            max_frags_per_table: 16,
            ..NashDbConfig::default()
        }
    }

    #[test]
    fn cold_start_scheme_covers_database() {
        let database = db();
        let mut nash = NashDbDistributor::new(&database, small_cfg());
        let s = nash.scheme();
        assert!(s.covers(&database));
        assert!(s.num_nodes() >= 1);
    }

    #[test]
    fn hot_range_gets_more_replicas() {
        let database = db();
        let mut nash = NashDbDistributor::new(&database, small_cfg());
        // Hammer the first 100k tuples of the fact table at a high price.
        for _ in 0..60 {
            nash.observe(&query(50.0, &[(0, 0, 100_000)]));
        }
        let s = nash.scheme();
        assert!(s.covers(&database));
        // Replicas hosting some part of the hot range vs a cold range.
        let replicas_touching = |lo: u64, hi: u64| -> usize {
            s.fragments()
                .iter()
                .enumerate()
                .filter(|(_, gf)| gf.table == TableId(0) && gf.range.overlap(lo, hi) > 0)
                .map(|(i, _)| s.hosts(i).len())
                .sum()
        };
        let hot = replicas_touching(0, 100_000);
        let cold = replicas_touching(500_000, 600_000);
        assert!(hot > cold, "hot range has {hot} replicas, cold has {cold}");
    }

    #[test]
    fn higher_prices_provision_more_nodes() {
        let database = db();
        let mut cheap = NashDbDistributor::new(&database, small_cfg());
        let mut pricey = NashDbDistributor::new(&database, small_cfg());
        for _ in 0..60 {
            cheap.observe(&query(1.0, &[(0, 0, 1_000_000)]));
            pricey.observe(&query(16.0, &[(0, 0, 1_000_000)]));
        }
        let n_cheap = cheap.scheme().num_nodes();
        let n_pricey = pricey.scheme().num_nodes();
        assert!(
            n_pricey > n_cheap,
            "pricey {n_pricey} <= cheap {n_cheap} nodes"
        );
    }

    #[test]
    fn eq1_splits_price_across_tables() {
        let database = db();
        let mut nash = NashDbDistributor::new(&database, small_cfg());
        // One query scanning both tables: the dim scan is 1% of the size,
        // so it carries ~1% of the price.
        for _ in 0..50 {
            nash.observe(&query(10.0, &[(0, 0, 990_000), (1, 0, 10_000)]));
        }
        let fact_est = &nash.tables[0].estimator;
        let dim_est = &nash.tables[1].estimator;
        let v_fact = fact_est.value_at(0, 1_000_000);
        let v_dim = dim_est.value_at(0, 10_000);
        // Per-tuple value is the same on both tables under Eq. 1.
        assert!(
            (v_fact - v_dim).abs() < 1e-12,
            "per-tuple values diverge: {v_fact} vs {v_dim}"
        );
    }

    #[test]
    fn fragments_fit_node_disk() {
        let database = db();
        let mut nash = NashDbDistributor::new(&database, small_cfg());
        let s = nash.scheme();
        for gf in s.fragments() {
            assert!(gf.range.size() <= 600_000);
        }
    }

    #[test]
    fn optimal_mode_runs() {
        let database = Database::new([("t", 10_000)]);
        let cfg = NashDbConfig {
            use_optimal_fragmentation: true,
            spec: NodeSpec::new(100.0, 20_000),
            max_frags_per_table: 8,
            ..NashDbConfig::default()
        };
        let mut nash = NashDbDistributor::new(&database, cfg);
        for i in 0..50 {
            nash.observe(&query(
                1.0,
                &[(0, (i * 97) % 5_000, (i * 97) % 5_000 + 2_000)],
            ));
        }
        let s = nash.scheme();
        assert!(s.covers(&database));
    }

    #[test]
    fn zero_size_scan_total_is_ignored() {
        // A malformed query with no scans (total size 0) is dropped, not a
        // crash — defensive path for Eq. 1's division.
        let database = db();
        let mut nash = NashDbDistributor::new(&database, small_cfg());
        nash.observe(&QueryRequest {
            price: 1.0,
            scans: vec![],
            tag: 0,
        });
        assert_eq!(nash.tables[0].estimator.window_len(), 0);
    }
}
