//! The experiment driver: plays a workload against a simulated cluster,
//! with any distribution system and any scan router.

use std::collections::HashMap;

use nashdb_cluster::{ClusterConfig, ClusterSim, DriverEvent, Metrics, QueryRequest};
use nashdb_core::ids::{NodeId, QueryId};
use nashdb_core::routing::{FragmentRequest, QueueView, ScanRouter};
use nashdb_core::transition::plan_transition;
use nashdb_sim::fault::FaultSchedule;
use nashdb_sim::{SimDuration, SimTime};
use nashdb_workload::Workload;

use crate::scheme::{DistScheme, Distributor};

/// Driver configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Cluster simulator parameters.
    pub cluster: ClusterConfig,
    /// Reconfiguration interval (the paper transitions hourly).
    pub reconfig_interval: SimDuration,
    /// Max-of-mins span penalty ϕ as a duration (the paper measures
    /// ϕ = 350 ms on AWS); converted to tuples via node throughput by
    /// [`RunConfig::phi_tuples`].
    pub phi: SimDuration,
    /// Prime the distributor with the statistics of the first N queries
    /// before computing the initial scheme. Static batch workloads re-run a
    /// fixed panel of queries, so the paper's measurements are of a system
    /// already warmed to the panel; this reproduces that steady state
    /// without waiting out a reconfiguration interval. Zero = cold start.
    pub warmup_queries: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            cluster: ClusterConfig::default(),
            reconfig_interval: SimDuration::from_secs(3600),
            phi: SimDuration::from_millis(350),
            warmup_queries: 0,
        }
    }
}

impl RunConfig {
    /// ϕ expressed in tuples of queued work at this cluster's throughput.
    pub fn phi_tuples(&self) -> u64 {
        nashdb_core::num::saturating_u64(self.phi.as_secs_f64() * self.cluster.throughput_tps)
    }
}

/// A query whose current attempt failed this many times is abandoned rather
/// than retried again (a safety valve against pathological schedules; real
/// runs retry at most once or twice).
const MAX_ATTEMPTS: u32 = 5;

/// How the driver routed (or declined to route) one query.
enum RouteOutcome {
    /// One `(node, tuples)` read per fragment request.
    Reads(Vec<(NodeId, u64)>),
    /// Some fragment the query needs has no live replica: undispatachable
    /// until a node restarts or the scheme changes.
    Dead,
}

/// Builds the fragment requests for one query under the current scheme,
/// dropping replica candidates on crashed nodes when `alive_only` is set —
/// the routing-around-failures path. `None` means some fragment has no live
/// replica left, so the query is undispatchable until a node restarts or the
/// scheme changes.
fn live_requests(
    scheme: &DistScheme,
    query: &QueryRequest,
    sim: &ClusterSim,
    alive_only: bool,
) -> Option<Vec<FragmentRequest>> {
    let mut requests = scheme.requests_for_query(query);
    if alive_only {
        for r in &mut requests {
            r.candidates.retain(|&n| sim.node_alive(n));
            if r.candidates.is_empty() {
                return None;
            }
        }
    }
    Some(requests)
}

/// Routes a batch of coincident queries with one router call against one
/// queue snapshot. [`ScanRouter::route_batch`] threads the queue view
/// through the batch sequentially, so each query's assignment is identical
/// to routing it alone at its arrival instant — but queue-view setup, heap
/// construction, and candidate caches are amortized across the batch.
///
/// Scheme construction guarantees every fragment has a replica (and
/// `alive_only` already marked crash-broken queries [`RouteOutcome::Dead`]),
/// so a router error here is driver/scheme drift. It used to be a panic;
/// it now degrades to abandoning the affected queries, counted under
/// `routing.unroutable_scans`, so a long scenario sweep still finishes.
fn plan_reads_batch(
    scheme: &DistScheme,
    queries: &[&QueryRequest],
    router: &dyn ScanRouter,
    sim: &ClusterSim,
    alive_only: bool,
) -> Vec<RouteOutcome> {
    // Fragment ids are dense scheme indices; a flat size table replaces the
    // old per-query HashMap on this hot path.
    let mut sizes: Vec<u64> = vec![0; scheme.fragments().len()];
    let mut scans: Vec<Vec<FragmentRequest>> = Vec::with_capacity(queries.len());
    let mut dead = vec![false; queries.len()];
    for (qi, query) in queries.iter().enumerate() {
        match live_requests(scheme, query, sim, alive_only) {
            Some(requests) => {
                for r in &requests {
                    sizes[r.fragment.index()] = r.size;
                }
                scans.push(requests);
            }
            None => {
                // A dead query contributes an empty scan (routes to an empty
                // assignment list, touching no queues) and stays Dead below.
                dead[qi] = true;
                scans.push(Vec::new());
            }
        }
    }
    let lens: Vec<usize> = scans.iter().map(Vec::len).collect();
    let mut queues = QueueView::from_waits(sim.queue_waits());
    let routed = {
        let _route = nashdb_obs::span("route");
        router.route_batch(scans, &mut queues)
    };
    let Ok(batch) = routed else {
        nashdb_obs::counter_add("routing.unroutable_scans", queries.len() as u64);
        return queries.iter().map(|_| RouteOutcome::Dead).collect();
    };
    batch
        .into_iter()
        .zip(lens)
        .zip(&dead)
        .map(|((assignments, expected), &is_dead)| {
            if is_dead {
                return RouteOutcome::Dead;
            }
            if assignments.len() != expected {
                // A router that drops or invents requests produced an
                // unusable plan; abandon the query rather than the run.
                nashdb_obs::counter_add("routing.unroutable_scans", 1);
                return RouteOutcome::Dead;
            }
            RouteOutcome::Reads(
                assignments
                    .iter()
                    .map(|a| (a.node, sizes[a.fragment.index()]))
                    .collect(),
            )
        })
        .collect()
}

/// [`plan_reads_batch`] for a single query — the retry path, where failed
/// queries are re-routed one at a time as their failure events arrive.
fn plan_reads(
    scheme: &DistScheme,
    query: &QueryRequest,
    router: &dyn ScanRouter,
    sim: &ClusterSim,
    alive_only: bool,
) -> RouteOutcome {
    plan_reads_batch(scheme, &[query], router, sim, alive_only)
        .pop()
        .unwrap_or(RouteOutcome::Dead)
}

/// Runs `workload` end to end: the distributor computes an initial scheme at
/// time zero, observes every arriving query, and is asked for a fresh scheme
/// at every reconfiguration interval; transitions are planned with the
/// Hungarian matcher and applied to the cluster (their transfer time and
/// cost are borne by the simulation, as in the paper's measurements).
///
/// Returns the run's [`Metrics`].
pub fn run_workload(
    workload: &Workload,
    distributor: &mut dyn Distributor,
    router: &dyn ScanRouter,
    cfg: &RunConfig,
) -> Metrics {
    run_workload_with_faults(workload, distributor, router, cfg, &FaultSchedule::none())
}

/// [`run_workload`] with a fault schedule injected. When a node crashes, the
/// driver re-routes failed queries to surviving replicas (dropping dead
/// candidates before routing); a query whose fragment has no live replica —
/// or that has failed `MAX_ATTEMPTS` times — is abandoned and counted in
/// [`Metrics::availability`]. With an empty schedule this is exactly
/// [`run_workload`].
pub fn run_workload_with_faults(
    workload: &Workload,
    distributor: &mut dyn Distributor,
    router: &dyn ScanRouter,
    cfg: &RunConfig,
    faults: &FaultSchedule,
) -> Metrics {
    // Everything below runs under one root span; provisioning, per-query
    // routing, periodic reconfiguration, and crash retries each get a nested
    // child so an active `ObsSession` sees where driver wall-clock goes.
    let _pipeline = nashdb_obs::span("pipeline");
    let faults_active = !faults.is_empty();
    let mut sim = ClusterSim::new(cfg.cluster);
    for tq in &workload.queries {
        sim.schedule_query(tq.at, tq.query.clone());
    }
    sim.schedule_faults(faults);
    // Reconfiguration timers through the last arrival.
    if let Some(last) = workload.queries.last().map(|q| q.at) {
        let mut t = SimTime::ZERO + cfg.reconfig_interval;
        while t <= last {
            sim.schedule_wakeup(t, 0);
            t += cfg.reconfig_interval;
        }
    }

    // Optional warmup, then provision the initial scheme.
    let (mut scheme, mut intervals) = {
        let _provision = nashdb_obs::span("provision");
        for tq in workload.queries.iter().take(cfg.warmup_queries) {
            distributor.observe(&tq.query);
        }
        let scheme = distributor.scheme();
        let intervals = scheme.node_intervals(&workload.db);
        let initial_plan = plan_transition(&[], &intervals);
        #[cfg(feature = "invariant-audit")]
        {
            let audit = nashdb_core::audit::audit_transition(&[], &intervals, &initial_plan);
            assert!(audit.is_ok(), "initial provision failed audit: {audit:?}");
        }
        if sim.reconfigure(&initial_plan).is_err() {
            nashdb_obs::counter_add("cluster.plans_rejected", 1);
        }
        (scheme, intervals)
    };

    // Queries still in flight, kept only under faults so a failed query can
    // be re-routed from its original request.
    let mut inflight: HashMap<QueryId, QueryRequest> = HashMap::new();
    let phi = cfg.phi_tuples();
    loop {
        match sim.next_event() {
            DriverEvent::QueryArrived { id, query } => {
                // Arrivals sharing this event's timestamp (with no other
                // driver event interleaved) are drained and routed as one
                // batch: one queue snapshot, one router call. `route_batch`
                // threads queue waits through the batch sequentially, so
                // every query is assigned exactly as if routed alone the
                // moment it arrived.
                let mut batch = vec![(id, query)];
                batch.extend(sim.take_coincident_arrivals());
                let _query = nashdb_obs::span("query");
                for (_, q) in &batch {
                    distributor.observe(q);
                }
                let queries: Vec<&QueryRequest> = batch.iter().map(|(_, q)| q).collect();
                let outcomes = plan_reads_batch(&scheme, &queries, router, &sim, faults_active);
                for ((qid, q), outcome) in batch.into_iter().zip(outcomes) {
                    match outcome {
                        RouteOutcome::Reads(reads) => {
                            if faults_active {
                                inflight.insert(qid, q);
                            }
                            if sim.dispatch(qid, &reads).is_err() {
                                // Dispatch rejects only plans referencing
                                // nodes the sim does not know — driver/sim
                                // drift. Count it and abandon the query
                                // instead of crashing the run.
                                nashdb_obs::counter_add("cluster.dispatch_rejected", 1);
                                inflight.remove(&qid);
                                sim.abandon_query(qid);
                            }
                        }
                        RouteOutcome::Dead => {
                            sim.abandon_query(qid);
                        }
                    }
                }
            }
            DriverEvent::QueryFailed { id, attempts } => {
                let _retry = nashdb_obs::span("retry");
                let outcome = if attempts >= MAX_ATTEMPTS {
                    RouteOutcome::Dead
                } else {
                    match inflight.get(&id) {
                        Some(q) => plan_reads(&scheme, q, router, &sim, true),
                        None => RouteOutcome::Dead,
                    }
                };
                // No asserts here: between routing and dispatch nothing can
                // invalidate the plan, but if state ever drifts the run
                // degrades to an abandoned query instead of a panic.
                let dispatched = matches!(&outcome, RouteOutcome::Reads(reads) if sim.dispatch(id, reads).is_ok());
                if !dispatched {
                    sim.abandon_query(id);
                    inflight.remove(&id);
                }
            }
            DriverEvent::NodeFailed { .. } | DriverEvent::NodeRestored { .. } => {
                // Liveness is re-read from the sim at every routing decision,
                // so these are informational.
            }
            DriverEvent::Wakeup { .. } => {
                let _reconfigure = nashdb_obs::span("reconfigure");
                let new_scheme = distributor.scheme();
                let new_intervals = new_scheme.node_intervals(&workload.db);
                let plan = plan_transition(&intervals, &new_intervals);
                #[cfg(feature = "invariant-audit")]
                {
                    let audit =
                        nashdb_core::audit::audit_transition(&intervals, &new_intervals, &plan);
                    assert!(audit.is_ok(), "transition failed audit: {audit:?}");
                }
                if sim.reconfigure(&plan).is_err() {
                    // A Hungarian plan against the current interval sets is
                    // always well-formed; count (rather than crash on) any
                    // drift so a long scenario sweep still finishes.
                    nashdb_obs::counter_add("cluster.plans_rejected", 1);
                } else {
                    scheme = new_scheme;
                    intervals = new_intervals;
                }
            }
            DriverEvent::QueryCompleted { id, .. } => {
                inflight.remove(&id);
            }
            DriverEvent::Finished => break,
        }
    }
    // ϕ is only used through phi_tuples — quiet the unused warning path
    // when a router ignores it.
    let _ = phi;
    sim.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributor::{NashDbConfig, NashDbDistributor};
    use nashdb_core::economics::NodeSpec;
    use nashdb_core::routing::MaxOfMins;
    use nashdb_workload::bernoulli::{workload as bernoulli, BernoulliConfig};
    use nashdb_workload::random::{workload as random, RandomConfig};

    fn fast_cluster() -> ClusterConfig {
        ClusterConfig {
            throughput_tps: 1_000_000.0,
            node_cost_per_hour: 100.0,
            metrics_bucket: SimDuration::from_secs(600),
            network: None,
        }
    }

    fn nash_cfg() -> NashDbConfig {
        NashDbConfig {
            spec: NodeSpec::new(100.0, 2_000_000),
            max_frags_per_table: 16,
            ..NashDbConfig::default()
        }
    }

    #[test]
    fn bernoulli_end_to_end_completes_every_query() {
        let w = bernoulli(&BernoulliConfig {
            size_gb: 4,
            queries: 80,
            ..BernoulliConfig::default()
        });
        let run = RunConfig {
            cluster: fast_cluster(),
            ..RunConfig::default()
        };
        let mut nash = NashDbDistributor::new(&w.db, nash_cfg());
        let m = run_workload(&w, &mut nash, &MaxOfMins::new(run.phi_tuples()), &run);
        assert_eq!(m.queries.len(), 80);
        assert!(m.mean_latency_secs() > 0.0);
        assert!(m.total_cost > 0.0);
    }

    #[test]
    fn dynamic_run_reconfigures_on_interval() {
        let w = random(&RandomConfig {
            size_gb: 4,
            queries: 60,
            duration: SimDuration::from_secs(4 * 3600),
            ..RandomConfig::default()
        });
        let run = RunConfig {
            cluster: fast_cluster(),
            reconfig_interval: SimDuration::from_secs(3600),
            ..RunConfig::default()
        };
        let mut nash = NashDbDistributor::new(&w.db, nash_cfg());
        let m = run_workload(&w, &mut nash, &MaxOfMins::new(run.phi_tuples()), &run);
        // Initial provision + at least 3 hourly reconfigurations.
        assert!(
            m.reconfigurations >= 4,
            "only {} reconfigs",
            m.reconfigurations
        );
        assert_eq!(m.queries.len(), 60);
    }

    #[test]
    fn runs_are_deterministic() {
        let w = bernoulli(&BernoulliConfig {
            size_gb: 2,
            queries: 40,
            ..BernoulliConfig::default()
        });
        let run = RunConfig {
            cluster: fast_cluster(),
            ..RunConfig::default()
        };
        let go = || {
            let mut nash = NashDbDistributor::new(&w.db, nash_cfg());
            run_workload(&w, &mut nash, &MaxOfMins::new(run.phi_tuples()), &run)
        };
        let a = go();
        let b = go();
        assert_eq!(a.queries, b.queries);
        assert!((a.total_cost - b.total_cost).abs() < 1e-9);
    }

    #[test]
    fn higher_price_lowers_latency_at_higher_cost() {
        // The paper's Fig. 6c mechanism: raising every query's price adds
        // replicas and nodes, trading money for latency.
        let run = RunConfig {
            cluster: fast_cluster(),
            warmup_queries: 60,
            ..RunConfig::default()
        };
        let go = |price: f64| {
            let w = bernoulli(&BernoulliConfig {
                size_gb: 4,
                queries: 120,
                price,
                ..BernoulliConfig::default()
            });
            let mut nash = NashDbDistributor::new(&w.db, nash_cfg());
            run_workload(&w, &mut nash, &MaxOfMins::new(run.phi_tuples()), &run)
        };
        let cheap = go(1.0);
        let pricey = go(16.0);
        assert!(
            pricey.mean_latency_secs() < cheap.mean_latency_secs(),
            "latency: pricey {} vs cheap {}",
            pricey.mean_latency_secs(),
            cheap.mean_latency_secs()
        );
        // Higher prices buy a bigger cluster. (Total cost can still fall —
        // the faster cluster drains the batch sooner, ending node rental
        // earlier — so the robust check is the provisioning decision.)
        assert!(
            pricey.peak_nodes > cheap.peak_nodes,
            "nodes: pricey {} vs cheap {}",
            pricey.peak_nodes,
            cheap.peak_nodes
        );
    }

    #[test]
    fn fault_free_schedule_matches_plain_run() {
        let w = bernoulli(&BernoulliConfig {
            size_gb: 2,
            queries: 30,
            ..BernoulliConfig::default()
        });
        let run = RunConfig {
            cluster: fast_cluster(),
            ..RunConfig::default()
        };
        let mut a_dist = NashDbDistributor::new(&w.db, nash_cfg());
        let a = run_workload(&w, &mut a_dist, &MaxOfMins::new(run.phi_tuples()), &run);
        let mut b_dist = NashDbDistributor::new(&w.db, nash_cfg());
        let b = run_workload_with_faults(
            &w,
            &mut b_dist,
            &MaxOfMins::new(run.phi_tuples()),
            &run,
            &FaultSchedule::none(),
        );
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.availability, b.availability);
        assert!((a.total_cost - b.total_cost).abs() < 1e-12);
    }
}
