//! # nashdb
//!
//! The end-to-end NashDB system (paper Fig. 1), assembled from the
//! `nashdb-core` algorithms and run against the `nashdb-cluster` simulated
//! elastic cluster:
//!
//! ```text
//! queries ──► tuple value estimator ──► fragmentation manager
//!                                             │
//!                                             ▼
//!          scan router ◄── cluster ◄── replication manager
//!                           ▲   (BFFD packing = provisioning)
//!                           └── transition planner (Hungarian)
//! ```
//!
//! The crate exposes:
//! * [`Distributor`] — the interface every *system* under evaluation
//!   implements (NashDB itself plus the Hypergraph/Threshold baselines in
//!   `nashdb-baselines`): observe queries, emit a [`DistScheme`] when asked,
//! * [`NashDbDistributor`] — NashDB proper,
//! * [`run_workload`] — the experiment driver: plays a workload into a
//!   simulated cluster, routing scans with any [`ScanRouter`] and
//!   reconfiguring on a fixed interval with minimum-transfer transitions.
//!
//! ## Quickstart
//!
//! ```
//! use nashdb::{run_workload, NashDbConfig, NashDbDistributor, RunConfig};
//! use nashdb_core::routing::MaxOfMins;
//! use nashdb_workload::bernoulli::{workload, BernoulliConfig};
//!
//! let w = workload(&BernoulliConfig { size_gb: 2, queries: 60, ..Default::default() });
//! let mut nash = NashDbDistributor::new(&w.db, NashDbConfig::default());
//! let run = RunConfig::default();
//! let metrics = run_workload(&w, &mut nash, &MaxOfMins::new(run.phi_tuples()), &run);
//! assert_eq!(metrics.queries.len(), 60);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod distributor;
mod driver;
mod scheme;

pub use distributor::{NashDbConfig, NashDbDistributor};
pub use driver::{run_workload, run_workload_with_faults, RunConfig};
pub use scheme::{DistScheme, Distributor, GlobalFragment};

pub use nashdb_core::routing::{MaxOfMins, ScanRouter};
