//! Distribution schemes and the system-under-evaluation interface.

use std::collections::HashMap;

use nashdb_cluster::{QueryRequest, ScanRange};
use nashdb_core::fragment::FragmentRange;
use nashdb_core::ids::{FragmentId, NodeId, TableId};
use nashdb_core::num::usize_from;
use nashdb_core::routing::FragmentRequest;
use nashdb_core::transition::IntervalSet;
use nashdb_workload::Database;

/// A fragment identified across all tables of the database: its table plus
/// its tuple range within that table. A scheme's fragments are indexed
/// densely; the index doubles as the routing-level [`FragmentId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalFragment {
    /// The owning table.
    pub table: TableId,
    /// Tuple range within the table.
    pub range: FragmentRange,
}

/// A complete data distribution: every fragment of every table, and which
/// node hosts which replicas. This is what each *system* (NashDB or a
/// baseline) hands the driver at every reconfiguration.
#[derive(Debug, Clone)]
pub struct DistScheme {
    fragments: Vec<GlobalFragment>,
    /// Per node, indices into `fragments`.
    nodes: Vec<Vec<usize>>,
    /// Per fragment, its hosting nodes.
    hosts: Vec<Vec<NodeId>>,
    /// Per table, fragment indices sorted by range start (for scan lookup).
    by_table: HashMap<TableId, Vec<usize>>,
}

impl DistScheme {
    /// Builds and validates a scheme.
    ///
    /// # Panics
    /// Panics if a fragment is hosted nowhere, a node hosts the same
    /// fragment twice, or a table's fragments overlap.
    pub fn new(fragments: Vec<GlobalFragment>, nodes: Vec<Vec<usize>>) -> Self {
        let mut hosts: Vec<Vec<NodeId>> = vec![Vec::new(); fragments.len()];
        for (n, frags) in nodes.iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            for &f in frags {
                assert!(f < fragments.len(), "node {n} hosts unknown fragment {f}");
                assert!(seen.insert(f), "node {n} hosts fragment {f} twice");
                hosts[f].push(NodeId(n as u64));
            }
        }
        for (f, h) in hosts.iter().enumerate() {
            assert!(!h.is_empty(), "fragment {f} has no replicas");
        }
        let mut by_table: HashMap<TableId, Vec<usize>> = HashMap::new();
        for (i, gf) in fragments.iter().enumerate() {
            by_table.entry(gf.table).or_default().push(i);
        }
        // nashdb-lint: allow(map-iter-order) -- validation-only pass; tables are checked independently and the asserts are order-agnostic
        for (table, idxs) in &mut by_table {
            idxs.sort_by_key(|&i| fragments[i].range.start);
            for w in idxs.windows(2) {
                assert!(
                    fragments[w[0]].range.end <= fragments[w[1]].range.start,
                    "fragments of table {table} overlap"
                );
            }
        }
        DistScheme {
            fragments,
            nodes,
            hosts,
            by_table,
        }
    }

    /// Number of nodes the scheme provisions.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// All fragments, by dense index.
    pub fn fragments(&self) -> &[GlobalFragment] {
        &self.fragments
    }

    /// Total replicas across the scheme.
    pub fn total_replicas(&self) -> usize {
        self.nodes.iter().map(Vec::len).sum()
    }

    /// The nodes hosting fragment index `f`.
    pub fn hosts(&self, f: usize) -> &[NodeId] {
        &self.hosts[f]
    }

    /// The fragment read requests a scan decomposes into: one request per
    /// overlapped fragment, each reading the scan's overlap with the
    /// fragment (rounded up to a whole fragment only when the fragment is
    /// smaller — the paper's fragments are disk-block sized, so its
    /// whole-block fetches equal the overlap at block granularity; our
    /// fragments can be much larger than a block and charging the full
    /// fragment would bill a sliver scan for megabytes it never reads).
    ///
    /// # Panics
    /// Panics if part of the scanned range is not covered by any fragment —
    /// a scheme must cover every tuple a query can touch.
    pub fn requests_for_scan(&self, scan: &ScanRange) -> Vec<FragmentRequest> {
        // A table with no fragments at all falls through to the coverage
        // assert below, which reports the uncovered range.
        let idxs = self
            .by_table
            .get(&scan.table)
            .map_or(&[][..], Vec::as_slice);
        let mut out = Vec::new();
        let mut covered = scan.start;
        let first = idxs.partition_point(|&i| self.fragments[i].range.end <= scan.start);
        for &i in &idxs[first..] {
            let r = self.fragments[i].range;
            if r.start >= scan.end {
                break;
            }
            assert!(
                r.start <= covered,
                "scan {}..{} of table {} hits a fragmentation gap at {covered}",
                scan.start,
                scan.end,
                scan.table
            );
            covered = r.end;
            out.push(FragmentRequest {
                fragment: FragmentId(i as u64),
                size: r.overlap(scan.start, scan.end),
                candidates: self.hosts[i].clone(),
            });
        }
        assert!(
            covered >= scan.end,
            "scan {}..{} of table {} extends past the fragmented region ({covered})",
            scan.start,
            scan.end,
            scan.table
        );
        out
    }

    /// All fragment requests for a query, deduplicated: two scans touching
    /// the same fragment issue one request whose size is the summed overlap
    /// (capped at the fragment size — overlapping scans do not re-read).
    ///
    /// Fragment ids are dense indices into this scheme, so deduplication is
    /// a flat scratch table (one slot per fragment) rather than a hash map:
    /// the fill is a memset and every lookup in the per-query hot path is a
    /// bounds-checked index.
    pub fn requests_for_query(&self, query: &QueryRequest) -> Vec<FragmentRequest> {
        const UNSEEN: usize = usize::MAX;
        let mut slot_of: Vec<usize> = vec![UNSEEN; self.fragments.len()];
        let mut out: Vec<FragmentRequest> = Vec::new();
        for scan in &query.scans {
            for req in self.requests_for_scan(scan) {
                let f = usize_from(req.fragment.get());
                if slot_of[f] == UNSEEN {
                    slot_of[f] = out.len();
                    out.push(req);
                } else {
                    let i = slot_of[f];
                    let cap = self.fragments[f].range.size();
                    out[i].size = (out[i].size + req.size).min(cap);
                }
            }
        }
        out
    }

    /// Per-node tuple interval sets in *global* coordinates (tables laid out
    /// end to end), the representation transition planning consumes.
    pub fn node_intervals(&self, db: &Database) -> Vec<IntervalSet> {
        let offsets = table_offsets(db);
        self.nodes
            .iter()
            .map(|frags| {
                frags
                    .iter()
                    .map(|&f| {
                        let gf = &self.fragments[f];
                        let off = offsets[usize_from(gf.table.get())];
                        (off + gf.range.start, off + gf.range.end)
                    })
                    .collect()
            })
            .collect()
    }

    /// Checks that every tuple of every table is covered by some fragment.
    pub fn covers(&self, db: &Database) -> bool {
        db.tables.iter().all(|t| {
            let Some(idxs) = self.by_table.get(&t.id) else {
                return false;
            };
            let mut covered = 0;
            for &i in idxs {
                let r = self.fragments[i].range;
                if r.start > covered {
                    return false;
                }
                covered = covered.max(r.end);
            }
            covered >= t.tuples
        })
    }
}

/// Global tuple offset of each table (tables laid out end to end).
pub(crate) fn table_offsets(db: &Database) -> Vec<u64> {
    let mut offsets = Vec::with_capacity(db.tables.len());
    let mut acc = 0;
    for t in &db.tables {
        offsets.push(acc);
        acc += t.tuples;
    }
    offsets
}

/// A system under evaluation: it watches the query stream and produces a
/// distribution scheme on demand.
pub trait Distributor {
    /// Folds one arrived query into the system's statistics.
    fn observe(&mut self, query: &QueryRequest);

    /// Computes the distribution scheme the system currently wants.
    fn scheme(&mut self) -> DistScheme;

    /// Name for experiment output.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_table_db() -> Database {
        Database::new([("a", 100), ("b", 50)])
    }

    fn gf(table: u64, start: u64, end: u64) -> GlobalFragment {
        GlobalFragment {
            table: TableId(table),
            range: FragmentRange::new(start, end),
        }
    }

    fn scheme() -> DistScheme {
        // Table a: [0,60) f0, [60,100) f1. Table b: [0,50) f2.
        DistScheme::new(
            vec![gf(0, 0, 60), gf(0, 60, 100), gf(1, 0, 50)],
            vec![vec![0, 2], vec![1, 0]],
        )
    }

    #[test]
    fn hosts_are_collected() {
        let s = scheme();
        assert_eq!(s.hosts(0), &[NodeId(0), NodeId(1)]);
        assert_eq!(s.hosts(1), &[NodeId(1)]);
        assert_eq!(s.num_nodes(), 2);
        assert_eq!(s.total_replicas(), 4);
    }

    #[test]
    fn scan_decomposes_into_overlaps() {
        let s = scheme();
        let reqs = s.requests_for_scan(&ScanRange::new(TableId(0), 50, 70));
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].fragment, FragmentId(0));
        assert_eq!(reqs[0].size, 10); // overlap with [0, 60)
        assert_eq!(reqs[1].fragment, FragmentId(1));
        assert_eq!(reqs[1].size, 10); // overlap with [60, 100)
    }

    #[test]
    fn query_overlaps_accumulate_and_cap() {
        let s = scheme();
        let q = QueryRequest {
            price: 1.0,
            scans: vec![
                ScanRange::new(TableId(0), 0, 30),
                ScanRange::new(TableId(0), 10, 60), // overlaps the first scan
            ],
            tag: 0,
        };
        let reqs = s.requests_for_query(&q);
        assert_eq!(reqs.len(), 1);
        // 30 + 50 = 80 summed overlap, capped at fragment size 60.
        assert_eq!(reqs[0].size, 60);
    }

    #[test]
    fn query_requests_deduplicate() {
        let s = scheme();
        let q = QueryRequest {
            price: 1.0,
            scans: vec![
                ScanRange::new(TableId(0), 0, 10),
                ScanRange::new(TableId(0), 20, 30),
                ScanRange::new(TableId(1), 0, 5),
            ],
            tag: 0,
        };
        let reqs = s.requests_for_query(&q);
        // Both table-a scans hit fragment 0; it is fetched once.
        assert_eq!(reqs.len(), 2);
    }

    #[test]
    fn node_intervals_use_global_offsets() {
        let s = scheme();
        let db = two_table_db();
        let iv = s.node_intervals(&db);
        // Node 0 holds a[0,60) and b[0,50) -> global [0,60) and [100,150).
        assert_eq!(iv[0].runs(), &[(0, 60), (100, 150)]);
        // Node 1 holds a[60,100) and a[0,60) -> merged [0,100).
        assert_eq!(iv[1].runs(), &[(0, 100)]);
    }

    #[test]
    fn coverage_check() {
        let db = two_table_db();
        assert!(scheme().covers(&db));
        let partial = DistScheme::new(vec![gf(0, 0, 60), gf(1, 0, 50)], vec![vec![0, 1]]);
        assert!(!partial.covers(&db));
    }

    #[test]
    #[should_panic(expected = "no replicas")]
    fn unhosted_fragment_rejected() {
        let _ = DistScheme::new(vec![gf(0, 0, 10)], vec![vec![]]);
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn duplicate_replica_rejected() {
        let _ = DistScheme::new(vec![gf(0, 0, 10)], vec![vec![0, 0]]);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_fragments_rejected() {
        let _ = DistScheme::new(vec![gf(0, 0, 10), gf(0, 5, 15)], vec![vec![0, 1]]);
    }

    #[test]
    #[should_panic(expected = "gap")]
    fn scan_over_gap_panics() {
        let s = DistScheme::new(vec![gf(0, 0, 10), gf(0, 20, 30)], vec![vec![0, 1]]);
        let _ = s.requests_for_scan(&ScanRange::new(TableId(0), 5, 25));
    }
}
