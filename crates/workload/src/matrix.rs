//! The declarative scenario-matrix axis for workloads.
//!
//! The scenario runner (`nashdb-bench scenarios`) sweeps a cross product of
//! axes; this module supplies the workload axis: a [`GeneratorKind`] ×
//! [`DriftLevel`] pair plus a scale, buildable into a concrete [`Workload`]
//! deterministically from a seed. Keeping the enumeration here (rather than
//! in the bench crate) lets any consumer — CLI, tests, future notebooks —
//! name the same workload cells.

use nashdb_cluster::ScanRange;
use nashdb_sim::SimDuration;

use crate::{bernoulli, random, realistic, tpch, trace, Workload};

/// Which generator family a matrix cell draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeneratorKind {
    /// TPC-H-like template batch ([`crate::tpch`]).
    Tpch,
    /// Geometric look-back time-series scans ([`crate::bernoulli`]).
    Bernoulli,
    /// Drifting analytics stream ([`realistic::drifting`]).
    Realistic,
    /// Uniform random range scans ([`crate::random`]).
    Random,
    /// A bernoulli workload round-tripped through the text trace codec
    /// ([`crate::trace`]) — exercises the save/load path end to end.
    Trace,
}

impl GeneratorKind {
    /// All generator kinds, in the order the matrix sweeps them.
    pub const ALL: [GeneratorKind; 5] = [
        GeneratorKind::Tpch,
        GeneratorKind::Bernoulli,
        GeneratorKind::Realistic,
        GeneratorKind::Random,
        GeneratorKind::Trace,
    ];

    /// Stable machine-readable name (artifact keys, CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            GeneratorKind::Tpch => "tpch",
            GeneratorKind::Bernoulli => "bernoulli",
            GeneratorKind::Realistic => "realistic",
            GeneratorKind::Random => "random",
            GeneratorKind::Trace => "trace",
        }
    }

    /// Parses a kind from its [`name`](Self::name).
    pub fn parse(s: &str) -> Option<GeneratorKind> {
        GeneratorKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Whether the kind is a batch (all queries effectively simultaneous)
    /// rather than a timed stream — batches are the workloads the paper
    /// warms the cluster for.
    pub fn is_batch(self) -> bool {
        matches!(
            self,
            GeneratorKind::Tpch | GeneratorKind::Bernoulli | GeneratorKind::Trace
        )
    }
}

/// How much the cell's access pattern moves over the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftLevel {
    /// Stationary access pattern.
    Steady,
    /// The hot region migrates across the table over the run.
    Drifting,
}

impl DriftLevel {
    /// Both levels, in sweep order.
    pub const ALL: [DriftLevel; 2] = [DriftLevel::Steady, DriftLevel::Drifting];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            DriftLevel::Steady => "steady",
            DriftLevel::Drifting => "drifting",
        }
    }

    /// Parses a level from its [`name`](Self::name).
    pub fn parse(s: &str) -> Option<DriftLevel> {
        DriftLevel::ALL.into_iter().find(|d| d.name() == s)
    }
}

/// How hostile the cell's environment is: which seeded fault schedule the
/// runner injects into the cluster sim (the workload itself is unchanged —
/// this axis lives here with the other matrix axes so every consumer names
/// the same cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultLevel {
    /// Failure-free (the legacy matrix; its cells keep their legacy keys).
    None,
    /// One seeded mid-run node crash with restart.
    Crash,
    /// A crash, a crash-with-restart, and two straggler windows.
    Chaos,
}

impl FaultLevel {
    /// All levels, in sweep order.
    pub const ALL: [FaultLevel; 3] = [FaultLevel::None, FaultLevel::Crash, FaultLevel::Chaos];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            FaultLevel::None => "none",
            FaultLevel::Crash => "crash",
            FaultLevel::Chaos => "chaos",
        }
    }

    /// Parses a level from its [`name`](Self::name).
    pub fn parse(s: &str) -> Option<FaultLevel> {
        FaultLevel::ALL.into_iter().find(|l| l.name() == s)
    }
}

/// One workload cell of the scenario matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixWorkloadSpec {
    /// Generator family.
    pub generator: GeneratorKind,
    /// Drift level.
    pub drift: DriftLevel,
    /// Database size in GB.
    pub size_gb: u64,
    /// Approximate query count (generators quantize, e.g. TPC-H rounds of
    /// 22 templates).
    pub queries: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Why a matrix cell could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// The trace round-trip failed (a codec bug — generated traces must
    /// always parse back).
    Trace(trace::TraceError),
}

impl std::fmt::Display for MatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatrixError::Trace(e) => write!(f, "trace round-trip failed: {e}"),
        }
    }
}

impl std::error::Error for MatrixError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MatrixError::Trace(e) => Some(e),
        }
    }
}

impl From<trace::TraceError> for MatrixError {
    fn from(e: trace::TraceError) -> Self {
        MatrixError::Trace(e)
    }
}

impl MatrixWorkloadSpec {
    /// Builds the concrete workload for this cell.
    ///
    /// Deterministic: equal specs build equal workloads.
    ///
    /// # Errors
    /// [`MatrixError::Trace`] if the [`GeneratorKind::Trace`] round-trip
    /// fails (indicates a codec bug, not bad input).
    pub fn build(&self) -> Result<Workload, MatrixError> {
        let w = match self.generator {
            GeneratorKind::Tpch => tpch::workload(&tpch::TpchConfig {
                size_gb: self.size_gb,
                rounds: (self.queries / 22).max(1),
                seed: self.seed,
                ..tpch::TpchConfig::default()
            }),
            GeneratorKind::Bernoulli => bernoulli::workload(&bernoulli::BernoulliConfig {
                size_gb: self.size_gb,
                queries: self.queries,
                seed: self.seed,
                ..bernoulli::BernoulliConfig::default()
            }),
            GeneratorKind::Realistic => realistic::drifting(&realistic::DriftConfig {
                size_gb: self.size_gb as f64,
                queries: self.queries,
                duration: SimDuration::from_secs(6 * 3600),
                sweep_turns: match self.drift {
                    DriftLevel::Steady => 0.0,
                    DriftLevel::Drifting => 1.0,
                },
                wobble: match self.drift {
                    DriftLevel::Steady => 0.0,
                    DriftLevel::Drifting => 0.08,
                },
                seed: self.seed,
            }),
            GeneratorKind::Random => random::workload(&random::RandomConfig {
                size_gb: self.size_gb,
                queries: self.queries,
                duration: SimDuration::from_secs(6 * 3600),
                seed: self.seed,
                ..random::RandomConfig::default()
            }),
            GeneratorKind::Trace => {
                let inner = bernoulli::workload(&bernoulli::BernoulliConfig {
                    size_gb: self.size_gb,
                    queries: self.queries,
                    seed: self.seed,
                    ..bernoulli::BernoulliConfig::default()
                });
                trace::from_trace(&trace::to_trace(&inner))?
            }
        };
        // `Realistic` drifts natively (the sweep knob above); the other
        // generators are made non-stationary by rotating their scan windows
        // across the run.
        Ok(match (self.generator, self.drift) {
            (GeneratorKind::Realistic, _) | (_, DriftLevel::Steady) => w,
            (_, DriftLevel::Drifting) => rotate_drift(w),
        })
    }
}

/// Imposes drift on a stationary workload: query `i` of `n` has every scan
/// shifted by `i/n` of its table (wrapping), so the access pattern migrates
/// once across each table over the run. Deterministic and read-preserving —
/// each query touches exactly as many tuples as before.
fn rotate_drift(mut w: Workload) -> Workload {
    let n = w.queries.len().max(1) as u64;
    let tuples_of: Vec<u64> = w.db.tables.iter().map(|t| t.tuples).collect();
    for (i, tq) in w.queries.iter_mut().enumerate() {
        let mut rotated = Vec::with_capacity(tq.query.scans.len());
        for s in &tq.query.scans {
            let tuples = tuples_of[s.table.index()];
            let len = s.size().min(tuples);
            // i/n of the table, computed in u128 to dodge overflow; the
            // quotient is < tuples (i < n), so the narrowing never saturates.
            let offset =
                u64::try_from((i as u128 * u128::from(tuples)) / u128::from(n)).unwrap_or(u64::MAX);
            let start = (s.start + offset) % tuples;
            if start + len <= tuples {
                rotated.push(ScanRange::new(s.table, start, start + len));
            } else {
                // Wraps: split into a tail run and a head run.
                let tail = tuples - start;
                rotated.push(ScanRange::new(s.table, start, tuples));
                rotated.push(ScanRange::new(s.table, 0, len - tail));
            }
        }
        tq.query.scans = rotated;
    }
    w.name = format!("{}-drift", w.name);
    w.validated()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimedQuery;

    fn spec(generator: GeneratorKind, drift: DriftLevel) -> MatrixWorkloadSpec {
        MatrixWorkloadSpec {
            generator,
            drift,
            size_gb: 2,
            queries: 44,
            seed: 7,
        }
    }

    #[test]
    fn every_cell_builds_and_is_deterministic() {
        for g in GeneratorKind::ALL {
            for d in DriftLevel::ALL {
                let a = spec(g, d).build().unwrap();
                let b = spec(g, d).build().unwrap();
                assert_eq!(a.queries, b.queries, "{}/{}", g.name(), d.name());
                assert!(!a.queries.is_empty());
            }
        }
    }

    #[test]
    fn names_round_trip() {
        for g in GeneratorKind::ALL {
            assert_eq!(GeneratorKind::parse(g.name()), Some(g));
        }
        for d in DriftLevel::ALL {
            assert_eq!(DriftLevel::parse(d.name()), Some(d));
        }
        for l in FaultLevel::ALL {
            assert_eq!(FaultLevel::parse(l.name()), Some(l));
        }
        assert_eq!(GeneratorKind::parse("nope"), None);
        assert_eq!(DriftLevel::parse(""), None);
        assert_eq!(FaultLevel::parse("mayhem"), None);
    }

    #[test]
    fn drift_changes_scans_but_preserves_read_volume() {
        for g in [
            GeneratorKind::Tpch,
            GeneratorKind::Bernoulli,
            GeneratorKind::Random,
        ] {
            let steady = spec(g, DriftLevel::Steady).build().unwrap();
            let drifted = spec(g, DriftLevel::Drifting).build().unwrap();
            assert_eq!(
                steady.total_read(),
                drifted.total_read(),
                "{}: drift must not change read volume",
                g.name()
            );
            assert_ne!(
                steady.queries,
                drifted.queries,
                "{}: drift must move the scans",
                g.name()
            );
        }
    }

    #[test]
    fn drifted_bernoulli_hot_spot_migrates() {
        // Mid-run, rotation has shifted scans by ~half the table: the
        // drifted query must differ from its steady twin, and a scan that
        // wrapped must have been split without losing tuples.
        let steady = spec(GeneratorKind::Bernoulli, DriftLevel::Steady)
            .build()
            .unwrap();
        let drifted = spec(GeneratorKind::Bernoulli, DriftLevel::Drifting)
            .build()
            .unwrap();
        let mid = drifted.queries.len() / 2;
        assert_ne!(
            steady.queries[mid].query.scans,
            drifted.queries[mid].query.scans
        );
        let read = |q: &TimedQuery| q.query.scans.iter().map(|s| s.size()).sum::<u64>();
        assert_eq!(read(&steady.queries[mid]), read(&drifted.queries[mid]));
    }

    #[test]
    fn trace_cell_round_trips_the_codec() {
        let direct = spec(GeneratorKind::Bernoulli, DriftLevel::Steady)
            .build()
            .unwrap();
        let traced = spec(GeneratorKind::Trace, DriftLevel::Steady)
            .build()
            .unwrap();
        assert_eq!(direct.queries, traced.queries);
        assert_eq!(direct.db.total_tuples(), traced.db.total_tuples());
    }
}
