//! The paper's *Random* dynamic workload (§10): a sequence of aggregated
//! range queries with uniformly distributed start and end points over a
//! TPC-H fact table, arriving over a 72-hour period.

use nashdb_cluster::{QueryRequest, ScanRange};
use nashdb_sim::{SimDuration, SimRng, SimTime};

use crate::{Database, TimedQuery, Workload, TUPLES_PER_GB};

/// Random workload configuration.
#[derive(Debug, Clone)]
pub struct RandomConfig {
    /// Fact-table size in GB.
    pub size_gb: u64,
    /// Number of queries.
    pub queries: usize,
    /// Workload duration (the paper's dynamic workloads span 72 h).
    pub duration: SimDuration,
    /// Price of every query.
    pub price: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            size_gb: 100,
            queries: 1_000,
            duration: SimDuration::from_secs(72 * 3600),
            price: 1.0,
            seed: 0xAD_u64,
        }
    }
}

/// Generates the workload: uniform `(start, end)` pairs, arrivals uniform
/// over the duration (sorted).
pub fn workload(cfg: &RandomConfig) -> Workload {
    assert!(cfg.queries > 0, "need at least one query");
    let db = Database::new([("fact", cfg.size_gb * TUPLES_PER_GB)]);
    let table = db.tables[0];
    let mut rng = SimRng::seed_from_u64(cfg.seed);

    let mut arrivals: Vec<u64> = (0..cfg.queries)
        .map(|_| rng.uniform_u64(0, cfg.duration.as_nanos().max(1)))
        .collect();
    arrivals.sort_unstable();

    let queries = arrivals
        .into_iter()
        .map(|at| {
            let a = rng.uniform_u64(0, table.tuples);
            let b = rng.uniform_u64(0, table.tuples);
            let (start, end) = if a <= b { (a, b + 1) } else { (b, a + 1) };
            TimedQuery {
                at: SimTime::from_nanos(at),
                query: QueryRequest {
                    price: cfg.price,
                    scans: vec![ScanRange::new(
                        table.id,
                        start,
                        end.min(table.tuples).max(start + 1),
                    )],
                    tag: 0,
                },
            }
        })
        .collect();

    Workload {
        name: format!("random-{}gb", cfg.size_gb),
        db,
        queries,
    }
    .validated()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_sorted_within_duration() {
        let cfg = RandomConfig::default();
        let w = workload(&cfg);
        assert!(w.queries.windows(2).all(|p| p[0].at <= p[1].at));
        assert!(w
            .queries
            .iter()
            .all(|q| q.at.as_nanos() <= cfg.duration.as_nanos()));
    }

    #[test]
    fn mean_scan_covers_about_a_third() {
        // |U1 - U2| has mean n/3 for uniform endpoints.
        let cfg = RandomConfig {
            queries: 5_000,
            ..RandomConfig::default()
        };
        let w = workload(&cfg);
        let n = w.db.tables[0].tuples as f64;
        let mean = w.total_read() as f64 / w.queries.len() as f64;
        assert!(
            (mean / n - 1.0 / 3.0).abs() < 0.02,
            "mean fraction {}",
            mean / n
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = RandomConfig::default();
        assert_eq!(workload(&cfg).queries, workload(&cfg).queries);
    }
}
