//! A TPC-H-like batch workload (paper §10, "TPC-H workload ... all query
//! templates ... with a size of 1 TB").
//!
//! NashDB consumes the *range scans* a query plan issues, not SQL (paper
//! §2), so the workload is reproduced at scan level: a schema with the
//! benchmark's table-size ratios, and for each of the 22 templates the scan
//! footprint its plan produces — full scans of the tables it joins and
//! partial ranges where its date/key predicates restrict a clustered scan.
//! Per-instance predicate placement is randomized, as different substitution
//! parameters hit different key ranges.

use nashdb_cluster::{QueryRequest, ScanRange};
use nashdb_sim::{SimDuration, SimRng, SimTime};

use nashdb_core::num::saturating_u64;

use crate::{Database, TimedQuery, Workload, TUPLES_PER_GB};

/// A template number outside TPC-H's `1..=22`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownTemplate {
    /// The rejected template number.
    pub template: u32,
}

impl std::fmt::Display for UnknownTemplate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TPC-H has templates 1..=22, got {}", self.template)
    }
}

impl std::error::Error for UnknownTemplate {}

/// Indices of the TPC-H tables in [`database`]'s ordering.
pub mod tables {
    /// lineitem
    pub const LINEITEM: usize = 0;
    /// orders
    pub const ORDERS: usize = 1;
    /// partsupp
    pub const PARTSUPP: usize = 2;
    /// part
    pub const PART: usize = 3;
    /// customer
    pub const CUSTOMER: usize = 4;
    /// supplier
    pub const SUPPLIER: usize = 5;
    /// nation
    pub const NATION: usize = 6;
    /// region
    pub const REGION: usize = 7;
}

/// Byte-share of each table in a TPC-H database (approximately the spec's
/// cardinality × row width at any scale factor).
const TABLE_SHARE: &[(&str, f64)] = &[
    ("lineitem", 0.700),
    ("orders", 0.150),
    ("partsupp", 0.100),
    ("part", 0.025),
    ("customer", 0.020),
    ("supplier", 0.004),
    ("nation", 0.0005),
    ("region", 0.0005),
];

/// How a template's plan touches one table.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Cov {
    /// Scans the whole table.
    Full,
    /// Scans a contiguous fraction at a random (per-instance) position — a
    /// clustered predicate such as a date range.
    Frac(f64),
    /// Scans the trailing fraction — a "recent data" predicate.
    Suffix(f64),
    /// Scans a fixed contiguous fraction at a fixed position (templates
    /// whose substitution parameters do not move the predicate — e.g. Q7's
    /// hard-coded 1995–1996 date range).
    Fixed(f64, f64),
}

/// The scan footprints of the 22 templates: `(table index, coverage)`.
fn template_footprint(template: u32) -> Result<&'static [(usize, Cov)], UnknownTemplate> {
    use tables::*;
    use Cov::*;
    Ok(match template {
        1 => &[(LINEITEM, Suffix(0.97))],
        2 => &[
            (PART, Frac(0.20)),
            (PARTSUPP, Frac(0.20)),
            (SUPPLIER, Full),
            (NATION, Full),
            (REGION, Full),
        ],
        3 => &[
            (CUSTOMER, Frac(0.20)),
            (ORDERS, Frac(0.49)),
            (LINEITEM, Frac(0.54)),
        ],
        4 => &[(ORDERS, Frac(0.25)), (LINEITEM, Frac(0.30))],
        5 => &[
            (CUSTOMER, Full),
            (ORDERS, Frac(0.15)),
            (LINEITEM, Frac(0.15)),
            (SUPPLIER, Full),
            (NATION, Full),
            (REGION, Full),
        ],
        6 => &[(LINEITEM, Frac(0.15))],
        7 => &[
            (SUPPLIER, Full),
            // Q7's date predicate is fixed by the spec (1995-01-01 ..
            // 1996-12-31), so every instance scans the same range.
            (LINEITEM, Fixed(0.30, 0.55)),
            (ORDERS, Full),
            (CUSTOMER, Full),
            (NATION, Full),
        ],
        8 => &[
            (PART, Frac(0.01)),
            (SUPPLIER, Full),
            (LINEITEM, Frac(0.30)),
            (ORDERS, Frac(0.30)),
            (CUSTOMER, Full),
            (NATION, Full),
            (REGION, Full),
        ],
        9 => &[
            (PART, Frac(0.05)),
            (SUPPLIER, Full),
            (LINEITEM, Full),
            (PARTSUPP, Full),
            (ORDERS, Full),
            (NATION, Full),
        ],
        10 => &[
            (CUSTOMER, Full),
            (ORDERS, Frac(0.08)),
            (LINEITEM, Frac(0.25)),
            (NATION, Full),
        ],
        11 => &[(PARTSUPP, Full), (SUPPLIER, Full), (NATION, Full)],
        12 => &[(ORDERS, Full), (LINEITEM, Frac(0.15))],
        13 => &[(CUSTOMER, Full), (ORDERS, Full)],
        14 => &[(LINEITEM, Frac(0.08)), (PART, Full)],
        15 => &[(LINEITEM, Frac(0.25)), (SUPPLIER, Full)],
        16 => &[(PARTSUPP, Full), (PART, Full), (SUPPLIER, Full)],
        17 => &[(LINEITEM, Full), (PART, Frac(0.01))],
        18 => &[(CUSTOMER, Full), (ORDERS, Full), (LINEITEM, Full)],
        19 => &[(LINEITEM, Frac(0.02)), (PART, Frac(0.02))],
        20 => &[
            (SUPPLIER, Full),
            (NATION, Full),
            (PARTSUPP, Frac(0.20)),
            (PART, Frac(0.01)),
            (LINEITEM, Frac(0.15)),
        ],
        21 => &[
            (SUPPLIER, Full),
            (LINEITEM, Full),
            (ORDERS, Full),
            (NATION, Full),
        ],
        22 => &[(CUSTOMER, Frac(0.25)), (ORDERS, Full)],
        _ => return Err(UnknownTemplate { template }),
    })
}

/// Builds the TPC-H database at `size_gb` total size.
pub fn database(size_gb: u64) -> Database {
    assert!(size_gb > 0, "database must have at least 1 GB");
    let total = size_gb * TUPLES_PER_GB;
    Database::new(
        TABLE_SHARE
            .iter()
            .map(|&(name, share)| (name, saturating_u64(total as f64 * share).max(1_000))),
    )
}

/// TPC-H workload generator configuration.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// Total database size in GB (the paper uses 1 TB = 1000).
    pub size_gb: u64,
    /// How many instances of each of the 22 templates to generate.
    pub rounds: usize,
    /// Price of every query, in 1/100 cent (the paper sweeps 1 to 16).
    pub price: f64,
    /// Per-template price overrides, `(template, price)` — used by the
    /// prioritization experiment (Fig. 9a prices template 7 separately).
    pub price_overrides: Vec<(u32, f64)>,
    /// Gap between consecutive query arrivals (a batch workload uses a
    /// small spacing: all queries are "sent simultaneously" but enter the
    /// system in a deterministic order).
    pub spacing: SimDuration,
    /// RNG seed for predicate placement.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            size_gb: 100,
            rounds: 5,
            price: 1.0,
            price_overrides: Vec::new(),
            spacing: SimDuration::from_millis(100),
            seed: 0x79c1234,
        }
    }
}

/// Generates the workload: `rounds` interleaved instances of templates
/// 1..=22, tagged with their template number.
pub fn workload(cfg: &TpchConfig) -> Workload {
    assert!(cfg.rounds > 0, "need at least one round");
    let db = database(cfg.size_gb);
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let mut queries = Vec::with_capacity(cfg.rounds * 22);
    let mut at = SimTime::ZERO;
    for _round in 0..cfg.rounds {
        for template in 1..=22u32 {
            let price = cfg
                .price_overrides
                .iter()
                .find(|(t, _)| *t == template)
                .map_or(cfg.price, |(_, p)| *p);
            let Ok(query) = instance(&db, template, price, &mut rng) else {
                unreachable!("templates 1..=22 all have footprints")
            };
            queries.push(TimedQuery { at, query });
            at += cfg.spacing;
        }
    }
    Workload {
        name: format!("tpch-{}gb", cfg.size_gb),
        db,
        queries,
    }
    .validated()
}

/// One instance of a template: its footprint with predicate positions drawn
/// from `rng`.
///
/// # Errors
/// Rejects template numbers outside `1..=22`.
pub fn instance(
    db: &Database,
    template: u32,
    price: f64,
    rng: &mut SimRng,
) -> Result<QueryRequest, UnknownTemplate> {
    let scans = template_footprint(template)?
        .iter()
        .map(|&(table_idx, cov)| {
            let table = &db.tables[table_idx];
            let n = table.tuples;
            let (start, end) = match cov {
                Cov::Full => (0, n),
                Cov::Suffix(f) => {
                    let len = frac_len(n, f, rng);
                    (n - len, n)
                }
                Cov::Frac(f) => {
                    let len = frac_len(n, f, rng);
                    let start = rng.uniform_u64(0, n - len + 1);
                    (start, start + len)
                }
                Cov::Fixed(f, pos) => {
                    let len = saturating_u64((n as f64) * f).clamp(1, n);
                    let start = saturating_u64(((n - len) as f64) * pos);
                    (start, start + len)
                }
            };
            ScanRange::new(table.id, start, end)
        })
        .collect();
    Ok(QueryRequest {
        price,
        scans,
        tag: template,
    })
}

/// A scan length near `f × n` with ±20 % per-instance jitter, at least one
/// tuple and at most the table.
fn frac_len(n: u64, f: f64, rng: &mut SimRng) -> u64 {
    let jitter = 0.8 + 0.4 * rng.uniform_f64();
    saturating_u64((n as f64) * f * jitter).clamp(1, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_shares_roughly_match() {
        let db = database(1000);
        let total = db.total_tuples() as f64;
        let li = db.tables[tables::LINEITEM].tuples as f64;
        assert!(
            (li / total - 0.70).abs() < 0.01,
            "lineitem share {}",
            li / total
        );
        assert_eq!(db.fact_table().name, "lineitem");
        assert_eq!(db.tables.len(), 8);
    }

    #[test]
    fn all_templates_have_footprints() {
        for t in 1..=22 {
            assert!(!template_footprint(t).unwrap().is_empty());
        }
    }

    #[test]
    fn template_zero_rejected() {
        assert_eq!(template_footprint(0), Err(UnknownTemplate { template: 0 }));
        assert_eq!(
            template_footprint(23),
            Err(UnknownTemplate { template: 23 })
        );
        assert_eq!(
            UnknownTemplate { template: 0 }.to_string(),
            "TPC-H has templates 1..=22, got 0"
        );
    }

    #[test]
    fn workload_is_deterministic_and_tagged() {
        let cfg = TpchConfig {
            size_gb: 10,
            rounds: 2,
            ..TpchConfig::default()
        };
        let a = workload(&cfg);
        let b = workload(&cfg);
        assert_eq!(a.queries.len(), 44);
        assert_eq!(a.queries, b.queries);
        // Tags cycle 1..=22 twice.
        let tags: Vec<u32> = a.queries.iter().map(|q| q.query.tag).collect();
        assert_eq!(&tags[..3], &[1, 2, 3]);
        assert_eq!(tags[22], 1);
    }

    #[test]
    fn price_overrides_apply_to_template_only() {
        let cfg = TpchConfig {
            size_gb: 10,
            rounds: 1,
            price: 1.0,
            price_overrides: vec![(7, 16.0)],
            ..TpchConfig::default()
        };
        let w = workload(&cfg);
        for tq in &w.queries {
            let expect = if tq.query.tag == 7 { 16.0 } else { 1.0 };
            assert!(
                (tq.query.price - expect).abs() < 1e-12,
                "template {}",
                tq.query.tag
            );
        }
    }

    #[test]
    fn instances_vary_in_predicate_placement() {
        let db = database(10);
        let mut rng = SimRng::seed_from_u64(1);
        let a = instance(&db, 6, 1.0, &mut rng).unwrap();
        let b = instance(&db, 6, 1.0, &mut rng).unwrap();
        // Template 6 is a Frac scan of lineitem: positions should differ.
        assert_ne!(a.scans[0], b.scans[0]);
    }

    #[test]
    fn suffix_templates_end_at_table_end() {
        let db = database(10);
        let mut rng = SimRng::seed_from_u64(2);
        let q = instance(&db, 1, 1.0, &mut rng).unwrap();
        assert_eq!(q.scans[0].end, db.tables[tables::LINEITEM].tuples);
    }
}
