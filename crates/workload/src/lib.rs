//! # nashdb-workload
//!
//! The workloads of the paper's evaluation (§10 + Appendix F), regenerated
//! synthetically at the interface NashDB actually consumes: *streams of
//! priced range scans over ordered tables*.
//!
//! * [`tpch`] — a TPC-H-like batch: the 22 templates' scan footprints over a
//!   schema with the benchmark's table-cardinality ratios.
//! * [`bernoulli`] — the paper's time-series analysis workload: every query
//!   ends at the last tuple of the fact table and reaches back a
//!   geometrically distributed number of gigabytes (95 % touch the last GB,
//!   `100·(19/20)ⁿ` % touch the n-th GB from the end).
//! * [`random`] — uniformly random aggregated range queries (dynamic).
//! * [`realistic`] — synthetic analogues of the proprietary "Real data 1/2"
//!   workloads, matched to the summary statistics the paper publishes in
//!   Table 1 (database size, query count, median/min bytes read) with
//!   drifting hot spots in the dynamic variants.
//! * [`trace`] — save/load any workload as a portable text trace.
//! * [`matrix`] — the scenario-matrix workload axis: generator × drift
//!   cells buildable deterministically from a seed.
//!
//! All generators are deterministic under a fixed seed. One "gigabyte" is
//! [`TUPLES_PER_GB`] tuples throughout.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bernoulli;
pub mod matrix;
pub mod random;
pub mod realistic;
pub mod tpch;
pub mod trace;

use nashdb_cluster::QueryRequest;
use nashdb_core::ids::TableId;
use nashdb_sim::SimTime;

/// Tuples per simulated gigabyte (a 1 KB tuple). Sizes in the paper are
/// quoted in GB/TB; all generators convert through this constant.
pub const TUPLES_PER_GB: u64 = 1_000_000;

/// One table of a workload's database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableSpec {
    /// The table's id (dense, starting at 0).
    pub id: TableId,
    /// Its cardinality in tuples (physical order assumed, as in the paper).
    pub tuples: u64,
    /// Human-readable name for reports.
    pub name: &'static str,
}

/// The database a workload runs against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Database {
    /// All tables, indexed by `TableId`.
    pub tables: Vec<TableSpec>,
}

impl Database {
    /// Builds a database, assigning dense table ids.
    pub fn new(tables: impl IntoIterator<Item = (&'static str, u64)>) -> Self {
        let tables: Vec<TableSpec> = tables
            .into_iter()
            .enumerate()
            .map(|(i, (name, tuples))| {
                assert!(tuples > 0, "table {name} is empty");
                TableSpec {
                    id: TableId(i as u64),
                    tuples,
                    name,
                }
            })
            .collect();
        assert!(!tables.is_empty(), "database needs at least one table");
        Database { tables }
    }

    /// Total tuples across all tables.
    pub fn total_tuples(&self) -> u64 {
        self.tables.iter().map(|t| t.tuples).sum()
    }

    /// The largest table (the "fact table" of the scan-heavy workloads).
    pub fn fact_table(&self) -> &TableSpec {
        let Some(t) = self.tables.iter().max_by_key(|t| t.tuples) else {
            unreachable!("the constructor rejects empty databases")
        };
        t
    }

    /// Looks a table up by id.
    pub fn table(&self, id: TableId) -> &TableSpec {
        &self.tables[id.index()]
    }
}

/// A query with its arrival time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedQuery {
    /// Arrival time.
    pub at: SimTime,
    /// The query.
    pub query: QueryRequest,
}

/// A complete workload: a database and a time-ordered query stream.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload name (for reports).
    pub name: String,
    /// The database scanned.
    pub db: Database,
    /// Queries sorted by arrival time.
    pub queries: Vec<TimedQuery>,
}

impl Workload {
    /// Asserts internal consistency (sortedness, scan bounds) and returns
    /// `self` — generators call this before handing a workload out.
    pub fn validated(self) -> Self {
        assert!(
            self.queries.windows(2).all(|w| w[0].at <= w[1].at),
            "queries must be sorted by arrival"
        );
        for tq in &self.queries {
            assert!(!tq.query.scans.is_empty(), "query with no scans");
            for s in &tq.query.scans {
                let table = self.db.table(s.table);
                assert!(
                    s.end <= table.tuples,
                    "scan {}..{} beyond table {} ({} tuples)",
                    s.start,
                    s.end,
                    table.name,
                    table.tuples
                );
            }
        }
        self
    }

    /// Total tuples read by all queries.
    pub fn total_read(&self) -> u64 {
        self.queries
            .iter()
            .flat_map(|tq| tq.query.scans.iter())
            .map(|s| s.size())
            .sum()
    }

    /// Per-query tuples read, sorted ascending (for Table 1 statistics).
    pub fn reads_sorted(&self) -> Vec<u64> {
        let mut reads: Vec<u64> = self
            .queries
            .iter()
            .map(|tq| tq.query.scans.iter().map(|s| s.size()).sum())
            .collect();
        reads.sort_unstable();
        reads
    }

    /// Summary statistics in the shape of the paper's Table 1.
    pub fn summary(&self) -> WorkloadSummary {
        let reads = self.reads_sorted();
        WorkloadSummary {
            name: self.name.clone(),
            db_gb: self.db.total_tuples() as f64 / TUPLES_PER_GB as f64,
            queries: self.queries.len(),
            median_read_gb: reads
                .get(reads.len().saturating_sub(1) / 2)
                .map_or(0.0, |&r| r as f64 / TUPLES_PER_GB as f64),
            min_read_gb: reads
                .first()
                .map_or(0.0, |&r| r as f64 / TUPLES_PER_GB as f64),
        }
    }
}

/// Table 1-style workload statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSummary {
    /// Workload name.
    pub name: String,
    /// Database size in (simulated) GB.
    pub db_gb: f64,
    /// Number of queries.
    pub queries: usize,
    /// Median data read per query, GB.
    pub median_read_gb: f64,
    /// Minimum data read per query, GB.
    pub min_read_gb: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use nashdb_cluster::ScanRange;

    fn tiny_workload() -> Workload {
        let db = Database::new([("t", 1000)]);
        let q = |at, s, e| TimedQuery {
            at: SimTime::from_secs(at),
            query: QueryRequest {
                price: 1.0,
                scans: vec![ScanRange::new(TableId(0), s, e)],
                tag: 0,
            },
        };
        Workload {
            name: "tiny".into(),
            db,
            queries: vec![q(0, 0, 100), q(1, 50, 950), q(2, 0, 10)],
        }
    }

    #[test]
    fn database_basics() {
        let db = Database::new([("small", 10), ("big", 100)]);
        assert_eq!(db.total_tuples(), 110);
        assert_eq!(db.fact_table().name, "big");
        assert_eq!(db.table(TableId(0)).name, "small");
    }

    #[test]
    fn workload_totals_and_summary() {
        let w = tiny_workload().validated();
        assert_eq!(w.total_read(), 100 + 900 + 10);
        let s = w.summary();
        assert_eq!(s.queries, 3);
        assert_eq!(w.reads_sorted(), vec![10, 100, 900]);
        // Median of [10, 100, 900] is 100 tuples.
        assert!((s.median_read_gb - 100.0 / TUPLES_PER_GB as f64).abs() < 1e-12);
        assert!((s.min_read_gb - 10.0 / TUPLES_PER_GB as f64).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "beyond table")]
    fn validation_catches_out_of_range_scan() {
        let mut w = tiny_workload();
        w.queries[0].query.scans[0] = ScanRange::new(TableId(0), 0, 2000);
        let _ = w.validated();
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn validation_catches_unsorted() {
        let mut w = tiny_workload();
        w.queries.swap(0, 2);
        let _ = w.validated();
    }
}
