//! Synthetic analogues of the paper's proprietary corporate workloads.
//!
//! The paper evaluates on three private workloads it can only characterize
//! through Table 1 (database size, query count, median and minimum data
//! read) plus one-line descriptions: a *dashboard* batch (static Real 1), a
//! *descriptive analytics* stream (dynamic Real 1), and a *predictive
//! analytics* stream (dynamic Real 2). We generate workloads matched to
//! those published statistics, adding drifting hot spots to the dynamic
//! variants so NashDB's adaptivity machinery is actually exercised
//! (a production analytics stream is never stationary). Each generator's
//! tests assert the Table 1 statistics hold.

use nashdb_cluster::{QueryRequest, ScanRange};
use nashdb_sim::{SimDuration, SimRng, SimTime};

use nashdb_core::num::saturating_u64;

use crate::{Database, TimedQuery, Workload, TUPLES_PER_GB};

fn gb(x: f64) -> u64 {
    saturating_u64(x * TUPLES_PER_GB as f64)
}

/// Splits a total read volume across the database's tables (largest first),
/// producing one contiguous scan per table, positioned by `rng` but fully
/// inside each table.
fn spread_scans(db: &Database, total: u64, rng: &mut SimRng) -> Vec<ScanRange> {
    let db_total = db.total_tuples();
    let total = total.clamp(1, db_total);
    let mut remaining = total;
    let mut scans = Vec::new();
    // Tables in descending size, so big reads land on big tables.
    let mut tables: Vec<_> = db.tables.iter().collect();
    tables.sort_by_key(|t| std::cmp::Reverse(t.tuples));
    for t in tables {
        if remaining == 0 {
            break;
        }
        // Read this table's proportional share of the request, capped by
        // the table itself.
        let share = saturating_u64(((total as f64) * (t.tuples as f64 / db_total as f64)).ceil());
        let len = share.clamp(1, t.tuples).min(remaining);
        let start = if len >= t.tuples {
            0
        } else {
            rng.uniform_u64(0, t.tuples - len + 1)
        };
        scans.push(ScanRange::new(t.id, start, start + len));
        remaining -= len;
    }
    scans
}

// ---------------------------------------------------------------------------
// Static "Real data 1": dashboard batch. Table 1: 800 GB DB, 1000 queries,
// median read 600 GB, min read 5 GB.
// ---------------------------------------------------------------------------

/// Generates the static Real-data-1 analogue.
pub fn real1_static(seed: u64) -> Workload {
    let db = Database::new([
        ("facts", gb(480.0)),
        ("events", gb(200.0)),
        ("dims", gb(120.0)),
    ]);
    let mut rng = SimRng::seed_from_u64(seed);

    // A dashboard is a fixed panel of templates re-run as a batch. Sizes:
    // a majority of heavyweight aggregations (most of the DB) plus a tail
    // of narrower drill-downs, tuned so the median query reads ~600 GB and
    // the smallest ~5 GB.
    let mut template_fracs: Vec<f64> = Vec::new();
    for i in 0..14 {
        template_fracs.push(0.72 + 0.02 * i as f64); // 0.72..0.98
    }
    for i in 0..11 {
        template_fracs.push(0.00625 * 1.6f64.powi(i)); // 5 GB .. ~550 GB
    }

    // A dashboard re-runs the *same* panel of queries each cycle: scan
    // positions are fixed per template (drawn once), not per instance.
    let template_scans: Vec<Vec<ScanRange>> = template_fracs
        .iter()
        .map(|&frac| {
            let total = saturating_u64(frac * db.total_tuples() as f64);
            spread_scans(&db, total, &mut rng)
        })
        .collect();

    let spacing = SimDuration::from_secs(120);
    let queries = (0..1000)
        .map(|i| {
            let t = i % template_scans.len();
            TimedQuery {
                at: SimTime::ZERO + spacing * i as u64,
                query: QueryRequest {
                    price: 1.0,
                    scans: template_scans[t].clone(),
                    tag: u32::try_from(t).unwrap_or(u32::MAX),
                },
            }
        })
        .collect();

    Workload {
        name: "real1-static".into(),
        db,
        queries,
    }
    .validated()
}

// ---------------------------------------------------------------------------
// Dynamic "Real data 1": descriptive analytics. Table 1: 300 GB DB, 1220
// queries over 72 h, median read 50 GB, min read < 1 GB.
// ---------------------------------------------------------------------------

/// Generates the dynamic Real-data-1 analogue.
pub fn real1_dynamic(seed: u64) -> Workload {
    let db = Database::new([("facts", gb(240.0)), ("dims", gb(60.0))]);
    let fact = db.tables[0];
    let mut rng = SimRng::seed_from_u64(seed);
    let duration = SimDuration::from_secs(72 * 3600);
    let n = 1220usize;

    let mut arrivals: Vec<u64> = (0..n)
        .map(|_| rng.uniform_u64(0, duration.as_nanos()))
        .collect();
    arrivals.sort_unstable();

    let queries = arrivals
        .into_iter()
        .map(|at_ns| {
            // Analysts chase a drifting region of interest: the hot centre
            // sweeps the fact table once over the 72 h, with a daily wobble.
            let phase = at_ns as f64 / duration.as_nanos() as f64;
            let wobble = 0.08 * (phase * 3.0 * std::f64::consts::TAU).sin();
            let centre = saturating_u64((phase + wobble).rem_euclid(1.0) * fact.tuples as f64);

            // Read sizes: 25 % narrow drill-downs (0.05–2 GB), 75 % regional
            // aggregations (15–120 GB); median ≈ 50 GB.
            let read = if rng.bernoulli(0.25) {
                gb(0.05) + rng.uniform_u64(0, gb(1.95))
            } else {
                gb(15.0) + rng.uniform_u64(0, gb(105.0))
            };
            let len = read.clamp(1, fact.tuples);
            let half = len / 2;
            let start = centre.saturating_sub(half).min(fact.tuples - len);
            TimedQuery {
                at: SimTime::from_nanos(at_ns),
                query: QueryRequest {
                    price: 1.0,
                    scans: vec![ScanRange::new(fact.id, start, start + len)],
                    tag: 0,
                },
            }
        })
        .collect();

    Workload {
        name: "real1-dynamic".into(),
        db,
        queries,
    }
    .validated()
}

// ---------------------------------------------------------------------------
// Parameterized drifting analytics stream: the real1-dynamic shape at any
// scale, with the drift rate as a knob.
// ---------------------------------------------------------------------------

/// Knobs for [`drifting`], a scaled-down real1-style analytics stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Database size in GB (80 % fact table, 20 % dimensions).
    pub size_gb: f64,
    /// Number of queries.
    pub queries: usize,
    /// Workload duration.
    pub duration: SimDuration,
    /// How many full sweeps of the fact table the hot centre makes over the
    /// run. `0.0` pins the centre (a stationary hot spot); `1.0` reproduces
    /// real1-dynamic's single sweep.
    pub sweep_turns: f64,
    /// Amplitude of the daily wobble superimposed on the sweep (fraction of
    /// the table; real1-dynamic uses `0.08`).
    pub wobble: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            size_gb: 10.0,
            queries: 200,
            duration: SimDuration::from_secs(6 * 3600),
            sweep_turns: 1.0,
            wobble: 0.08,
            seed: 0xd1f7,
        }
    }
}

/// Generates a drifting analytics stream: analysts chase a region of
/// interest whose centre sweeps the fact table `sweep_turns` times, with a
/// sinusoidal wobble. Reads are a mix of narrow drill-downs and regional
/// aggregations scaled to the database size.
pub fn drifting(cfg: &DriftConfig) -> Workload {
    let size_gb = if cfg.size_gb.is_finite() && cfg.size_gb > 0.0 {
        cfg.size_gb
    } else {
        1.0
    };
    let db = Database::new([("facts", gb(size_gb * 0.8)), ("dims", gb(size_gb * 0.2))]);
    let fact = db.tables[0];
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let duration_ns = cfg.duration.as_nanos().max(1);
    let n = cfg.queries.max(1);

    let mut arrivals: Vec<u64> = (0..n).map(|_| rng.uniform_u64(0, duration_ns)).collect();
    arrivals.sort_unstable();

    let queries = arrivals
        .into_iter()
        .map(|at_ns| {
            let phase = at_ns as f64 / duration_ns as f64;
            let wobble = cfg.wobble * (phase * 3.0 * std::f64::consts::TAU).sin();
            let centre = saturating_u64(
                (phase * cfg.sweep_turns + wobble).rem_euclid(1.0) * fact.tuples as f64,
            );

            // 25 % narrow drill-downs (~0.5 % of the table), 75 % regional
            // aggregations (5–40 % of the table) — real1-dynamic's ratios,
            // rescaled.
            let read = if rng.bernoulli(0.25) {
                1 + rng.uniform_u64(0, (fact.tuples / 200).max(1))
            } else {
                fact.tuples / 20 + rng.uniform_u64(0, (fact.tuples * 35 / 100).max(1))
            };
            let len = read.clamp(1, fact.tuples);
            let half = len / 2;
            let start = centre.saturating_sub(half).min(fact.tuples - len);
            TimedQuery {
                at: SimTime::from_nanos(at_ns),
                query: QueryRequest {
                    price: 1.0,
                    scans: vec![ScanRange::new(fact.id, start, start + len)],
                    tag: 0,
                },
            }
        })
        .collect();

    Workload {
        name: if cfg.sweep_turns == 0.0 {
            "drifting-steady".to_string()
        } else {
            "drifting-moving".to_string()
        },
        db,
        queries,
    }
    .validated()
}

// ---------------------------------------------------------------------------
// Dynamic "Real data 2": predictive analytics. Table 1: 3 TB DB, 2500
// queries over 72 h, median read 450 GB, min read 80 KB.
// ---------------------------------------------------------------------------

/// Generates the dynamic Real-data-2 analogue.
pub fn real2_dynamic(seed: u64) -> Workload {
    let db = Database::new([
        ("train", gb(2100.0)),
        ("features", gb(700.0)),
        ("models", gb(200.0)),
    ]);
    let mut rng = SimRng::seed_from_u64(seed);
    let duration = SimDuration::from_secs(72 * 3600);
    let n = 2500usize;

    let mut arrivals: Vec<u64> = (0..n)
        .map(|_| rng.uniform_u64(0, duration.as_nanos()))
        .collect();
    arrivals.sort_unstable();

    // Tiny feature lookups hit zipf-hot keys whose hot set drifts daily.
    let zipf = nashdb_sim::rng::ZipfTable::new(4096, 1.05);
    let features = db.tables[1];

    let queries = arrivals
        .into_iter()
        .map(|at_ns| {
            let phase = at_ns as f64 / duration.as_nanos() as f64;
            if rng.bernoulli(0.30) {
                // Point-ish feature read: 80 KB .. 100 MB around a hot key.
                let rank = zipf.sample(&mut rng);
                let day_shift = (saturating_u64(phase * 3.0) * 512) % 4096;
                let slot = (rank + day_shift) % 4096;
                let slot_width = features.tuples / 4096;
                let base = slot * slot_width;
                let len = (80 + rng.uniform_u64(0, 100_000)).min(slot_width.max(81));
                let start = base.min(features.tuples - len);
                TimedQuery {
                    at: SimTime::from_nanos(at_ns),
                    query: QueryRequest {
                        price: 1.0,
                        scans: vec![ScanRange::new(features.id, start, start + len)],
                        tag: 1,
                    },
                }
            } else {
                // Training sweep: 350–700 GB across the big tables.
                let read = gb(350.0) + rng.uniform_u64(0, gb(350.0));
                TimedQuery {
                    at: SimTime::from_nanos(at_ns),
                    query: QueryRequest {
                        price: 1.0,
                        scans: spread_scans(&db, read, &mut rng),
                        tag: 2,
                    },
                }
            }
        })
        .collect();

    Workload {
        name: "real2-dynamic".into(),
        db,
        queries,
    }
    .validated()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real1_static_matches_table1() {
        let w = real1_static(7);
        let s = w.summary();
        assert!((s.db_gb - 800.0).abs() < 1.0, "db {}", s.db_gb);
        assert_eq!(s.queries, 1000);
        assert!(
            (500.0..=700.0).contains(&s.median_read_gb),
            "median {}",
            s.median_read_gb
        );
        assert!(
            (3.0..=8.0).contains(&s.min_read_gb),
            "min {}",
            s.min_read_gb
        );
    }

    #[test]
    fn real1_dynamic_matches_table1() {
        let w = real1_dynamic(7);
        let s = w.summary();
        assert!((s.db_gb - 300.0).abs() < 1.0);
        assert_eq!(s.queries, 1220);
        assert!(
            (35.0..=70.0).contains(&s.median_read_gb),
            "median {}",
            s.median_read_gb
        );
        assert!(s.min_read_gb < 1.0, "min {}", s.min_read_gb);
        // Spans 72 h.
        let last = w.queries.last().unwrap().at;
        assert!(last.as_secs_f64() > 60.0 * 3600.0);
    }

    #[test]
    fn real2_dynamic_matches_table1() {
        let w = real2_dynamic(7);
        let s = w.summary();
        assert!((s.db_gb - 3000.0).abs() < 1.0);
        assert_eq!(s.queries, 2500);
        assert!(
            (350.0..=550.0).contains(&s.median_read_gb),
            "median {}",
            s.median_read_gb
        );
        // 80 KB = 80 tuples = 0.00008 GB.
        assert!(s.min_read_gb < 0.001, "min {}", s.min_read_gb);
    }

    #[test]
    fn dynamic_real1_hot_centre_drifts() {
        let w = real1_dynamic(7);
        let fact_len = w.db.tables[0].tuples as f64;
        let centre_of = |tq: &TimedQuery| {
            let s = tq.query.scans[0];
            (s.start + s.end) as f64 / 2.0 / fact_len
        };
        let early: f64 = w.queries[..100].iter().map(centre_of).sum::<f64>() / 100.0;
        let late: f64 = w.queries[w.queries.len() - 100..]
            .iter()
            .map(centre_of)
            .sum::<f64>()
            / 100.0;
        assert!(
            (late - early).abs() > 0.2,
            "no drift: early {early:.2} late {late:.2}"
        );
    }

    #[test]
    fn drifting_sweeps_when_asked_and_holds_when_not() {
        let moving = drifting(&DriftConfig {
            sweep_turns: 1.0,
            ..DriftConfig::default()
        });
        let steady = drifting(&DriftConfig {
            sweep_turns: 0.0,
            wobble: 0.0,
            ..DriftConfig::default()
        });
        let centre_of = |w: &Workload, tq: &TimedQuery| {
            let s = tq.query.scans[0];
            (s.start + s.end) as f64 / 2.0 / w.db.tables[0].tuples as f64
        };
        let spread = |w: &Workload| {
            let k = 50.min(w.queries.len() / 2);
            let early: f64 = w.queries[..k].iter().map(|q| centre_of(w, q)).sum::<f64>() / k as f64;
            let late: f64 = w.queries[w.queries.len() - k..]
                .iter()
                .map(|q| centre_of(w, q))
                .sum::<f64>()
                / k as f64;
            (late - early).abs()
        };
        assert!(spread(&moving) > 0.2, "no drift: {}", spread(&moving));
        assert!(
            spread(&steady) < 0.1,
            "unexpected drift: {}",
            spread(&steady)
        );
    }

    #[test]
    fn drifting_is_deterministic_and_scales() {
        let cfg = DriftConfig {
            size_gb: 2.0,
            queries: 60,
            ..DriftConfig::default()
        };
        assert_eq!(drifting(&cfg).queries, drifting(&cfg).queries);
        let s = drifting(&cfg).summary();
        assert!((s.db_gb - 2.0).abs() < 0.01, "db {}", s.db_gb);
        assert_eq!(s.queries, 60);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(real1_static(3).queries, real1_static(3).queries);
        assert_eq!(real1_dynamic(3).queries, real1_dynamic(3).queries);
        assert_eq!(real2_dynamic(3).queries, real2_dynamic(3).queries);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(real1_dynamic(1).queries, real1_dynamic(2).queries);
    }
}
