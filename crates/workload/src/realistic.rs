//! Synthetic analogues of the paper's proprietary corporate workloads.
//!
//! The paper evaluates on three private workloads it can only characterize
//! through Table 1 (database size, query count, median and minimum data
//! read) plus one-line descriptions: a *dashboard* batch (static Real 1), a
//! *descriptive analytics* stream (dynamic Real 1), and a *predictive
//! analytics* stream (dynamic Real 2). We generate workloads matched to
//! those published statistics, adding drifting hot spots to the dynamic
//! variants so NashDB's adaptivity machinery is actually exercised
//! (a production analytics stream is never stationary). Each generator's
//! tests assert the Table 1 statistics hold.

use nashdb_cluster::{QueryRequest, ScanRange};
use nashdb_sim::{SimDuration, SimRng, SimTime};

use nashdb_core::num::saturating_u64;

use crate::{Database, TimedQuery, Workload, TUPLES_PER_GB};

fn gb(x: f64) -> u64 {
    saturating_u64(x * TUPLES_PER_GB as f64)
}

/// Splits a total read volume across the database's tables (largest first),
/// producing one contiguous scan per table, positioned by `rng` but fully
/// inside each table.
fn spread_scans(db: &Database, total: u64, rng: &mut SimRng) -> Vec<ScanRange> {
    let db_total = db.total_tuples();
    let total = total.clamp(1, db_total);
    let mut remaining = total;
    let mut scans = Vec::new();
    // Tables in descending size, so big reads land on big tables.
    let mut tables: Vec<_> = db.tables.iter().collect();
    tables.sort_by_key(|t| std::cmp::Reverse(t.tuples));
    for t in tables {
        if remaining == 0 {
            break;
        }
        // Read this table's proportional share of the request, capped by
        // the table itself.
        let share = saturating_u64(((total as f64) * (t.tuples as f64 / db_total as f64)).ceil());
        let len = share.clamp(1, t.tuples).min(remaining);
        let start = if len >= t.tuples {
            0
        } else {
            rng.uniform_u64(0, t.tuples - len + 1)
        };
        scans.push(ScanRange::new(t.id, start, start + len));
        remaining -= len;
    }
    scans
}

// ---------------------------------------------------------------------------
// Static "Real data 1": dashboard batch. Table 1: 800 GB DB, 1000 queries,
// median read 600 GB, min read 5 GB.
// ---------------------------------------------------------------------------

/// Generates the static Real-data-1 analogue.
pub fn real1_static(seed: u64) -> Workload {
    let db = Database::new([
        ("facts", gb(480.0)),
        ("events", gb(200.0)),
        ("dims", gb(120.0)),
    ]);
    let mut rng = SimRng::seed_from_u64(seed);

    // A dashboard is a fixed panel of templates re-run as a batch. Sizes:
    // a majority of heavyweight aggregations (most of the DB) plus a tail
    // of narrower drill-downs, tuned so the median query reads ~600 GB and
    // the smallest ~5 GB.
    let mut template_fracs: Vec<f64> = Vec::new();
    for i in 0..14 {
        template_fracs.push(0.72 + 0.02 * i as f64); // 0.72..0.98
    }
    for i in 0..11 {
        template_fracs.push(0.00625 * 1.6f64.powi(i)); // 5 GB .. ~550 GB
    }

    // A dashboard re-runs the *same* panel of queries each cycle: scan
    // positions are fixed per template (drawn once), not per instance.
    let template_scans: Vec<Vec<ScanRange>> = template_fracs
        .iter()
        .map(|&frac| {
            let total = saturating_u64(frac * db.total_tuples() as f64);
            spread_scans(&db, total, &mut rng)
        })
        .collect();

    let spacing = SimDuration::from_secs(120);
    let queries = (0..1000)
        .map(|i| {
            let t = i % template_scans.len();
            TimedQuery {
                at: SimTime::ZERO + spacing * i as u64,
                query: QueryRequest {
                    price: 1.0,
                    scans: template_scans[t].clone(),
                    tag: u32::try_from(t).unwrap_or(u32::MAX),
                },
            }
        })
        .collect();

    Workload {
        name: "real1-static".into(),
        db,
        queries,
    }
    .validated()
}

// ---------------------------------------------------------------------------
// Dynamic "Real data 1": descriptive analytics. Table 1: 300 GB DB, 1220
// queries over 72 h, median read 50 GB, min read < 1 GB.
// ---------------------------------------------------------------------------

/// Generates the dynamic Real-data-1 analogue.
pub fn real1_dynamic(seed: u64) -> Workload {
    let db = Database::new([("facts", gb(240.0)), ("dims", gb(60.0))]);
    let fact = db.tables[0];
    let mut rng = SimRng::seed_from_u64(seed);
    let duration = SimDuration::from_secs(72 * 3600);
    let n = 1220usize;

    let mut arrivals: Vec<u64> = (0..n)
        .map(|_| rng.uniform_u64(0, duration.as_nanos()))
        .collect();
    arrivals.sort_unstable();

    let queries = arrivals
        .into_iter()
        .map(|at_ns| {
            // Analysts chase a drifting region of interest: the hot centre
            // sweeps the fact table once over the 72 h, with a daily wobble.
            let phase = at_ns as f64 / duration.as_nanos() as f64;
            let wobble = 0.08 * (phase * 3.0 * std::f64::consts::TAU).sin();
            let centre = saturating_u64((phase + wobble).rem_euclid(1.0) * fact.tuples as f64);

            // Read sizes: 25 % narrow drill-downs (0.05–2 GB), 75 % regional
            // aggregations (15–120 GB); median ≈ 50 GB.
            let read = if rng.bernoulli(0.25) {
                gb(0.05) + rng.uniform_u64(0, gb(1.95))
            } else {
                gb(15.0) + rng.uniform_u64(0, gb(105.0))
            };
            let len = read.clamp(1, fact.tuples);
            let half = len / 2;
            let start = centre.saturating_sub(half).min(fact.tuples - len);
            TimedQuery {
                at: SimTime::from_nanos(at_ns),
                query: QueryRequest {
                    price: 1.0,
                    scans: vec![ScanRange::new(fact.id, start, start + len)],
                    tag: 0,
                },
            }
        })
        .collect();

    Workload {
        name: "real1-dynamic".into(),
        db,
        queries,
    }
    .validated()
}

// ---------------------------------------------------------------------------
// Dynamic "Real data 2": predictive analytics. Table 1: 3 TB DB, 2500
// queries over 72 h, median read 450 GB, min read 80 KB.
// ---------------------------------------------------------------------------

/// Generates the dynamic Real-data-2 analogue.
pub fn real2_dynamic(seed: u64) -> Workload {
    let db = Database::new([
        ("train", gb(2100.0)),
        ("features", gb(700.0)),
        ("models", gb(200.0)),
    ]);
    let mut rng = SimRng::seed_from_u64(seed);
    let duration = SimDuration::from_secs(72 * 3600);
    let n = 2500usize;

    let mut arrivals: Vec<u64> = (0..n)
        .map(|_| rng.uniform_u64(0, duration.as_nanos()))
        .collect();
    arrivals.sort_unstable();

    // Tiny feature lookups hit zipf-hot keys whose hot set drifts daily.
    let zipf = nashdb_sim::rng::ZipfTable::new(4096, 1.05);
    let features = db.tables[1];

    let queries = arrivals
        .into_iter()
        .map(|at_ns| {
            let phase = at_ns as f64 / duration.as_nanos() as f64;
            if rng.bernoulli(0.30) {
                // Point-ish feature read: 80 KB .. 100 MB around a hot key.
                let rank = zipf.sample(&mut rng);
                let day_shift = (saturating_u64(phase * 3.0) * 512) % 4096;
                let slot = (rank + day_shift) % 4096;
                let slot_width = features.tuples / 4096;
                let base = slot * slot_width;
                let len = (80 + rng.uniform_u64(0, 100_000)).min(slot_width.max(81));
                let start = base.min(features.tuples - len);
                TimedQuery {
                    at: SimTime::from_nanos(at_ns),
                    query: QueryRequest {
                        price: 1.0,
                        scans: vec![ScanRange::new(features.id, start, start + len)],
                        tag: 1,
                    },
                }
            } else {
                // Training sweep: 350–700 GB across the big tables.
                let read = gb(350.0) + rng.uniform_u64(0, gb(350.0));
                TimedQuery {
                    at: SimTime::from_nanos(at_ns),
                    query: QueryRequest {
                        price: 1.0,
                        scans: spread_scans(&db, read, &mut rng),
                        tag: 2,
                    },
                }
            }
        })
        .collect();

    Workload {
        name: "real2-dynamic".into(),
        db,
        queries,
    }
    .validated()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real1_static_matches_table1() {
        let w = real1_static(7);
        let s = w.summary();
        assert!((s.db_gb - 800.0).abs() < 1.0, "db {}", s.db_gb);
        assert_eq!(s.queries, 1000);
        assert!(
            (500.0..=700.0).contains(&s.median_read_gb),
            "median {}",
            s.median_read_gb
        );
        assert!(
            (3.0..=8.0).contains(&s.min_read_gb),
            "min {}",
            s.min_read_gb
        );
    }

    #[test]
    fn real1_dynamic_matches_table1() {
        let w = real1_dynamic(7);
        let s = w.summary();
        assert!((s.db_gb - 300.0).abs() < 1.0);
        assert_eq!(s.queries, 1220);
        assert!(
            (35.0..=70.0).contains(&s.median_read_gb),
            "median {}",
            s.median_read_gb
        );
        assert!(s.min_read_gb < 1.0, "min {}", s.min_read_gb);
        // Spans 72 h.
        let last = w.queries.last().unwrap().at;
        assert!(last.as_secs_f64() > 60.0 * 3600.0);
    }

    #[test]
    fn real2_dynamic_matches_table1() {
        let w = real2_dynamic(7);
        let s = w.summary();
        assert!((s.db_gb - 3000.0).abs() < 1.0);
        assert_eq!(s.queries, 2500);
        assert!(
            (350.0..=550.0).contains(&s.median_read_gb),
            "median {}",
            s.median_read_gb
        );
        // 80 KB = 80 tuples = 0.00008 GB.
        assert!(s.min_read_gb < 0.001, "min {}", s.min_read_gb);
    }

    #[test]
    fn dynamic_real1_hot_centre_drifts() {
        let w = real1_dynamic(7);
        let fact_len = w.db.tables[0].tuples as f64;
        let centre_of = |tq: &TimedQuery| {
            let s = tq.query.scans[0];
            (s.start + s.end) as f64 / 2.0 / fact_len
        };
        let early: f64 = w.queries[..100].iter().map(centre_of).sum::<f64>() / 100.0;
        let late: f64 = w.queries[w.queries.len() - 100..]
            .iter()
            .map(centre_of)
            .sum::<f64>()
            / 100.0;
        assert!(
            (late - early).abs() > 0.2,
            "no drift: early {early:.2} late {late:.2}"
        );
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(real1_static(3).queries, real1_static(3).queries);
        assert_eq!(real1_dynamic(3).queries, real1_dynamic(3).queries);
        assert_eq!(real2_dynamic(3).queries, real2_dynamic(3).queries);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(real1_dynamic(1).queries, real1_dynamic(2).queries);
    }
}
