//! The paper's *Bernoulli* workload (§10): simple range queries over the
//! TPC-H fact table simulating a time-series analysis where recent tuples
//! are accessed more than old ones.
//!
//! Every query ends at the last tuple; the starting point reaches back a
//! geometrically distributed distance: 95 % of queries touch the last GB,
//! 90 % the second-to-last GB, and `100 · (19/20)ⁿ` % the n-th GB from the
//! end — i.e. the reach-back in whole GB is geometric with success
//! probability 1/20 (plus a uniform sub-GB remainder so starts are not
//! quantized to GB boundaries).

use nashdb_cluster::{QueryRequest, ScanRange};
use nashdb_sim::{SimDuration, SimRng, SimTime};

use crate::{Database, TimedQuery, Workload, TUPLES_PER_GB};

/// Bernoulli workload configuration.
#[derive(Debug, Clone)]
pub struct BernoulliConfig {
    /// Fact-table size in GB (the paper uses the 1 TB TPC-H fact table).
    pub size_gb: u64,
    /// Number of queries.
    pub queries: usize,
    /// Price of every query.
    pub price: f64,
    /// Arrival spacing (batch workload: small and uniform).
    pub spacing: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BernoulliConfig {
    fn default() -> Self {
        BernoulliConfig {
            size_gb: 100,
            queries: 500,
            price: 1.0,
            spacing: SimDuration::from_millis(100),
            seed: 0xbe_u64,
        }
    }
}

/// Generates the workload.
pub fn workload(cfg: &BernoulliConfig) -> Workload {
    assert!(cfg.queries > 0, "need at least one query");
    let db = Database::new([("fact", cfg.size_gb * TUPLES_PER_GB)]);
    let table = db.tables[0];
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let queries = (0..cfg.queries)
        .map(|i| {
            let reach_gb = rng.geometric(1.0 / 20.0);
            let sub = rng.uniform_f64();
            let reach =
                nashdb_core::num::saturating_u64((reach_gb as f64 + sub) * TUPLES_PER_GB as f64);
            let start = table.tuples.saturating_sub(reach.max(1));
            TimedQuery {
                at: SimTime::ZERO + cfg.spacing * i as u64,
                query: QueryRequest {
                    price: cfg.price,
                    scans: vec![ScanRange::new(table.id, start, table.tuples)],
                    tag: 0,
                },
            }
        })
        .collect();
    Workload {
        name: format!("bernoulli-{}gb", cfg.size_gb),
        db,
        queries,
    }
    .validated()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_end_at_last_tuple() {
        let w = workload(&BernoulliConfig::default());
        let end = w.db.tables[0].tuples;
        assert!(w.queries.iter().all(|q| q.query.scans[0].end == end));
    }

    #[test]
    fn reach_back_distribution_matches_paper() {
        let cfg = BernoulliConfig {
            queries: 20_000,
            size_gb: 1_000,
            ..BernoulliConfig::default()
        };
        let w = workload(&cfg);
        let end = w.db.tables[0].tuples;
        let frac_reaching = |gb_back: u64| {
            let cutoff = end - gb_back * TUPLES_PER_GB;
            w.queries
                .iter()
                .filter(|q| q.query.scans[0].start < cutoff)
                .count() as f64
                / w.queries.len() as f64
        };
        // P(reach beyond 1 GB back) = 0.95, beyond 2 GB = 0.9025, ...
        assert!(
            (frac_reaching(1) - 0.95).abs() < 0.02,
            "{}",
            frac_reaching(1)
        );
        assert!((frac_reaching(2) - 0.9025).abs() < 0.02);
        let ten = 0.95f64.powi(10);
        assert!((frac_reaching(10) - ten).abs() < 0.02);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = BernoulliConfig::default();
        assert_eq!(workload(&cfg).queries, workload(&cfg).queries);
    }

    #[test]
    fn scans_are_nonempty_and_in_range() {
        let w = workload(&BernoulliConfig {
            size_gb: 2,
            queries: 1_000,
            ..BernoulliConfig::default()
        });
        for q in &w.queries {
            let s = q.query.scans[0];
            assert!(s.start < s.end);
            assert!(s.end <= w.db.tables[0].tuples);
        }
    }
}
