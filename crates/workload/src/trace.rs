//! Workload trace I/O.
//!
//! The paper's real workloads were shared as query traces; this module
//! gives the reproduction the same currency: any [`Workload`] — generated
//! or captured — can be written to a line-oriented text trace and loaded
//! back bit-identically, so experiments can be re-run from files and custom
//! workloads can be authored by hand or by external tools.
//!
//! Format (`#` starts a comment, fields are space-separated):
//!
//! ```text
//! nashdb-trace v1
//! name bernoulli-4gb
//! table fact 4000000
//! query 0 1.0 0 0:3871999:4000000
//! query 100000000 1.0 0 0:0:4000000 1:10:20
//! ```
//!
//! `query <at_nanos> <price> <tag> <table>:<start>:<end>...` — times in
//! nanoseconds, scans as table-index:start:end triples.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use nashdb_cluster::{QueryRequest, ScanRange};
use nashdb_core::ids::TableId;
use nashdb_sim::SimTime;

use crate::{Database, TimedQuery, Workload};

/// A malformed trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number the error was found on (0 = structural).
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, TraceError> {
    Err(TraceError {
        line,
        message: message.into(),
    })
}

/// Serializes a workload to the trace format.
pub fn to_trace(w: &Workload) -> String {
    let mut out = String::new();
    out.push_str("nashdb-trace v1\n");
    let _ = writeln!(out, "name {}", w.name);
    for t in &w.db.tables {
        let _ = writeln!(out, "table {} {}", t.name, t.tuples);
    }
    for tq in &w.queries {
        let _ = write!(
            out,
            "query {} {} {}",
            tq.at.as_nanos(),
            tq.query.price,
            tq.query.tag
        );
        for s in &tq.query.scans {
            let _ = write!(out, " {}:{}:{}", s.table.get(), s.start, s.end);
        }
        out.push('\n');
    }
    out
}

/// Parses a workload from the trace format. The returned workload is
/// validated (sorted arrivals, in-range scans).
///
/// Table names are interned for the life of the process (traces are loaded
/// once per run).
pub fn from_trace(text: &str) -> Result<Workload, TraceError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let (line_no, header) = lines.next().ok_or_else(|| TraceError {
        line: 0,
        message: "empty trace".into(),
    })?;
    if header != "nashdb-trace v1" {
        return err(line_no, format!("bad header {header:?}"));
    }

    let mut name = String::from("trace");
    let mut tables: Vec<(&'static str, u64)> = Vec::new();
    let mut queries: Vec<TimedQuery> = Vec::new();

    for (line_no, line) in lines {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_ascii_whitespace();
        match fields.next() {
            Some("name") => {
                name = fields.collect::<Vec<_>>().join(" ");
                if name.is_empty() {
                    return err(line_no, "name requires a value");
                }
            }
            Some("table") => {
                let Some(tname) = fields.next() else {
                    return err(line_no, "table requires <name> <tuples>");
                };
                let tuples: u64 = match fields.next().map(str::parse) {
                    Some(Ok(n)) if n > 0 => n,
                    _ => return err(line_no, "table requires a positive tuple count"),
                };
                if !queries.is_empty() {
                    return err(line_no, "table lines must precede query lines");
                }
                tables.push((Box::leak(tname.to_owned().into_boxed_str()), tuples));
            }
            Some("query") => {
                if tables.is_empty() {
                    return err(line_no, "query before any table");
                }
                let at: u64 = parse_field(&mut fields, line_no, "arrival nanos")?;
                let price: f64 = parse_field(&mut fields, line_no, "price")?;
                if !price.is_finite() || price < 0.0 {
                    return err(line_no, "price must be finite and nonnegative");
                }
                let tag: u32 = parse_field(&mut fields, line_no, "tag")?;
                let mut scans = Vec::new();
                for triple in fields {
                    let mut parts = triple.split(':');
                    let table: u64 = parse_part(parts.next(), line_no, "table index")?;
                    let start: u64 = parse_part(parts.next(), line_no, "scan start")?;
                    let end: u64 = parse_part(parts.next(), line_no, "scan end")?;
                    if parts.next().is_some() {
                        return err(line_no, format!("malformed scan triple {triple:?}"));
                    }
                    if nashdb_core::num::usize_from(table) >= tables.len() {
                        return err(line_no, format!("unknown table index {table}"));
                    }
                    if start >= end || end > tables[nashdb_core::num::usize_from(table)].1 {
                        return err(
                            line_no,
                            format!("scan {start}..{end} out of range for table {table}"),
                        );
                    }
                    scans.push(ScanRange::new(TableId(table), start, end));
                }
                if scans.is_empty() {
                    return err(line_no, "query has no scans");
                }
                queries.push(TimedQuery {
                    at: SimTime::from_nanos(at),
                    query: QueryRequest { price, scans, tag },
                });
            }
            Some(other) => return err(line_no, format!("unknown directive {other:?}")),
            None => unreachable!("blank lines filtered above"),
        }
    }

    if tables.is_empty() {
        return err(0, "trace declares no tables");
    }
    if !queries.windows(2).all(|w| w[0].at <= w[1].at) {
        return err(0, "queries must be sorted by arrival time");
    }
    Ok(Workload {
        name,
        db: Database::new(tables),
        queries,
    }
    .validated())
}

fn parse_field<T: std::str::FromStr>(
    fields: &mut std::str::SplitAsciiWhitespace<'_>,
    line: usize,
    what: &str,
) -> Result<T, TraceError> {
    match fields.next().map(str::parse::<T>) {
        Some(Ok(v)) => Ok(v),
        _ => err(line, format!("missing or invalid {what}")),
    }
}

fn parse_part<T: std::str::FromStr>(
    part: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, TraceError> {
    match part.map(str::parse::<T>) {
        Some(Ok(v)) => Ok(v),
        _ => err(line, format!("missing or invalid {what}")),
    }
}

/// Writes a workload trace to a file.
pub fn save(w: &Workload, path: impl AsRef<Path>) -> std::io::Result<()> {
    fs::write(path, to_trace(w))
}

/// Loads a workload trace from a file.
pub fn load(path: impl AsRef<Path>) -> Result<Workload, Box<dyn std::error::Error>> {
    Ok(from_trace(&fs::read_to_string(path)?)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bernoulli::{workload as bernoulli, BernoulliConfig};
    use crate::tpch::{workload as tpch, TpchConfig};

    #[test]
    fn round_trips_generated_workloads() {
        for w in [
            bernoulli(&BernoulliConfig {
                size_gb: 2,
                queries: 30,
                ..BernoulliConfig::default()
            }),
            tpch(&TpchConfig {
                size_gb: 2,
                rounds: 1,
                ..TpchConfig::default()
            }),
            crate::realistic::real1_dynamic(3),
        ] {
            let text = to_trace(&w);
            let back = from_trace(&text).expect("round trip parses");
            assert_eq!(back.name, w.name);
            assert_eq!(back.db.total_tuples(), w.db.total_tuples());
            assert_eq!(back.queries.len(), w.queries.len());
            for (a, b) in back.queries.iter().zip(&w.queries) {
                assert_eq!(a.at, b.at);
                assert_eq!(a.query.scans, b.query.scans);
                assert_eq!(a.query.tag, b.query.tag);
                assert!((a.query.price - b.query.price).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn hand_written_trace_parses() {
        let text = "nashdb-trace v1\n\
                    name tiny\n\
                    # a comment\n\
                    table events 1000\n\
                    table dims 100\n\
                    query 0 1.5 7 0:0:500\n\
                    query 2000000000 0.5 0 0:500:1000 1:0:100\n";
        let w = from_trace(text).unwrap();
        assert_eq!(w.name, "tiny");
        assert_eq!(w.db.tables.len(), 2);
        assert_eq!(w.queries.len(), 2);
        assert_eq!(w.queries[0].query.tag, 7);
        assert_eq!(w.queries[1].query.scans.len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases = [
            ("wrong header\n", 1, "bad header"),
            ("nashdb-trace v1\ntable t\n", 2, "positive tuple count"),
            (
                "nashdb-trace v1\nquery 0 1 0 0:0:1\n",
                2,
                "before any table",
            ),
            (
                "nashdb-trace v1\ntable t 10\nquery 0 1 0 0:5:20\n",
                3,
                "out of range",
            ),
            (
                "nashdb-trace v1\ntable t 10\nquery 0 1 0 9:0:5\n",
                3,
                "unknown table",
            ),
            (
                "nashdb-trace v1\ntable t 10\nquery 0 -1 0 0:0:5\n",
                3,
                "nonnegative",
            ),
            ("nashdb-trace v1\ntable t 10\nquery 0 1 0\n", 3, "no scans"),
            (
                "nashdb-trace v1\ntable t 10\nquery 0 1 0 0:0:5:9\n",
                3,
                "malformed scan",
            ),
            ("nashdb-trace v1\nfrobnicate\n", 2, "unknown directive"),
        ];
        for (text, line, needle) in cases {
            let e = from_trace(text).unwrap_err();
            assert_eq!(e.line, line, "{text:?}");
            assert!(
                e.message.contains(needle),
                "{text:?}: {} !~ {needle}",
                e.message
            );
        }
    }

    #[test]
    fn unsorted_queries_rejected() {
        let text = "nashdb-trace v1\ntable t 10\nquery 5 1 0 0:0:5\nquery 1 1 0 0:0:5\n";
        let e = from_trace(text).unwrap_err();
        assert!(e.message.contains("sorted"));
    }

    #[test]
    fn file_round_trip() {
        let w = bernoulli(&BernoulliConfig {
            size_gb: 1,
            queries: 5,
            ..BernoulliConfig::default()
        });
        let dir = std::env::temp_dir().join("nashdb-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.trace");
        save(&w, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.queries.len(), 5);
        std::fs::remove_file(&path).ok();
    }
}
