//! The *Naive* fragmentation baseline (paper §10.1): equal-size fragments.

use nashdb_core::fragment::Fragmentation;
use nashdb_core::num::usize_from;

/// Cuts `table_len` tuples into `count` near-equal fragments.
pub fn naive_fragmentation(table_len: u64, count: usize) -> Fragmentation {
    Fragmentation::equal_width(table_len, count.min(usize_from(table_len)).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_widths() {
        let f = naive_fragmentation(100, 4);
        assert_eq!(f.len(), 4);
        assert!(f.ranges().all(|r| r.size() == 25));
    }

    #[test]
    fn clamps_count_to_table() {
        let f = naive_fragmentation(3, 10);
        assert_eq!(f.len(), 3);
    }
}
