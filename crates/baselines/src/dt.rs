//! The *DT* fragmentation baseline (paper §10.1): "greedily searches for
//! the best split point of the data, then recursively splits the resulting
//! two halves until the maximum number of partitions have been created.
//! This is equivalent to only running the 'split' procedure of NashDB, and
//! is similar to the CART decision tree induction algorithm."

use nashdb_core::fragment::{ChunkPrefix, Fragmentation};
use nashdb_core::value::Chunk;

/// Fragments by repeated best-split (no merging). Produces at most
/// `max_frags` fragments; stops early when no split reduces error.
/// Malformed chunks yield a single fragment spanning whatever the chunks
/// claim to cover (a baseline shouldn't panic where the production
/// fragmenter returns a typed error).
///
/// # Panics
/// Panics if `max_frags` is zero.
pub fn dt_fragmentation(chunks: &[Chunk], max_frags: usize) -> Fragmentation {
    assert!(max_frags > 0, "need at least one fragment");
    let Ok(prefix) = ChunkPrefix::new(chunks) else {
        return Fragmentation::single(chunks.last().map_or(1, |c| c.end.max(1)));
    };
    let bounds = prefix.bounds();
    let table_len = prefix.table_len();

    let mut boundaries = vec![0u64, table_len];
    while boundaries.len() - 1 < max_frags {
        // Best split across all current fragments.
        let mut best: Option<(usize, u64, f64)> = None; // (frag idx, point, gain)
        for (idx, w) in boundaries.windows(2).enumerate() {
            let (a, b) = (w[0], w[1]);
            let whole = prefix.error(a, b);
            if whole <= 1e-12 {
                continue;
            }
            let lo = bounds.partition_point(|&x| x <= a);
            let hi = bounds.partition_point(|&x| x < b);
            for &p in &bounds[lo..hi] {
                let gain = whole - (prefix.error(a, p) + prefix.error(p, b));
                if gain > 1e-12 && best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((idx, p, gain));
                }
            }
        }
        match best {
            Some((idx, p, _)) => boundaries.insert(idx + 1, p),
            None => break,
        }
    }
    Fragmentation::from_boundaries(boundaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nashdb_core::fragment::optimal_fragmentation;

    fn chunk(start: u64, end: u64, value: f64) -> Chunk {
        Chunk { start, end, value }
    }

    #[test]
    fn splits_a_step_function_exactly() {
        let chunks = vec![chunk(0, 50, 1.0), chunk(50, 100, 9.0)];
        let f = dt_fragmentation(&chunks, 2);
        assert_eq!(f.boundaries(), &[0, 50, 100]);
    }

    #[test]
    fn respects_cap_and_stops_when_uniform() {
        let chunks = vec![chunk(0, 100, 3.0)];
        let f = dt_fragmentation(&chunks, 8);
        assert_eq!(f.len(), 1); // nothing to split
        let chunks = vec![
            chunk(0, 25, 1.0),
            chunk(25, 50, 2.0),
            chunk(50, 75, 3.0),
            chunk(75, 100, 4.0),
        ];
        let f = dt_fragmentation(&chunks, 3);
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn never_beats_optimal_and_often_matches_on_staircases() {
        let chunks: Vec<Chunk> = (0..8)
            .map(|i| chunk(i * 10, (i + 1) * 10, (i % 3) as f64))
            .collect();
        let prefix = ChunkPrefix::new(&chunks).unwrap();
        for k in 2..=6 {
            let dt_err = dt_fragmentation(&chunks, k).total_error(&prefix);
            let opt_err = optimal_fragmentation(&chunks, k)
                .unwrap()
                .total_error(&prefix);
            assert!(
                dt_err + 1e-9 >= opt_err,
                "k={k}: dt {dt_err} < opt {opt_err}"
            );
        }
    }

    /// The classic greedy-split pathology: the best *first* split can be
    /// globally wrong. DT is a strictly weaker heuristic than NashDB's
    /// split+merge, which is the paper's Fig. 6b point.
    #[test]
    fn greedy_first_split_can_be_suboptimal() {
        // Values where one-shot best split differs from the optimal pair of
        // cuts: two symmetric bumps.
        let chunks = vec![
            chunk(0, 10, 0.0),
            chunk(10, 20, 10.0),
            chunk(20, 30, 0.0),
            chunk(30, 40, 10.0),
            chunk(40, 50, 0.0),
        ];
        let prefix = ChunkPrefix::new(&chunks).unwrap();
        let dt_err = dt_fragmentation(&chunks, 3).total_error(&prefix);
        let opt_err = optimal_fragmentation(&chunks, 3)
            .unwrap()
            .total_error(&prefix);
        assert!(dt_err >= opt_err);
    }
}
