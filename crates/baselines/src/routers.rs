//! Routing baselines (paper §10.4).
//!
//! * **Shortest queue** — schedules each fragment request on the node with
//!   the shortest queue, ignoring query span entirely (load-balancing
//!   extreme, like E-Store's access spreading).
//! * **Greedy SC** — minimizes query span by repeatedly selecting the node
//!   that covers the most remaining fragments (the greedy set-cover of
//!   SWORD), ignoring queue lengths entirely.

use std::collections::HashSet;

use nashdb_core::ids::NodeId;
use nashdb_core::routing::{
    validate_requests, Assignment, FragmentRequest, QueueView, RouteError, ScanRouter,
};

/// Always pick the least-loaded replica.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestQueue;

impl ScanRouter for ShortestQueue {
    fn route(
        &self,
        requests: &[FragmentRequest],
        queues: &mut QueueView,
    ) -> Result<Vec<Assignment>, RouteError> {
        validate_requests(requests)?;
        Ok(requests
            .iter()
            .map(|req| {
                let mut node = req.candidates[0];
                for &n in &req.candidates[1..] {
                    if (queues.wait(n), n) < (queues.wait(node), node) {
                        node = n;
                    }
                }
                queues.enqueue(node, req.size);
                Assignment {
                    fragment: req.fragment,
                    node,
                }
            })
            .collect())
    }

    fn name(&self) -> &'static str {
        "shortest-queue"
    }
}

/// Minimize span with greedy set cover: repeatedly pick the node hosting the
/// most still-unassigned fragments (ties: more queued work last, then lower
/// id) and assign all of them to it.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedySetCover;

impl ScanRouter for GreedySetCover {
    fn route(
        &self,
        requests: &[FragmentRequest],
        queues: &mut QueueView,
    ) -> Result<Vec<Assignment>, RouteError> {
        validate_requests(requests)?;
        let mut remaining: Vec<&FragmentRequest> = requests.iter().collect();
        let mut out = Vec::with_capacity(requests.len());
        while !remaining.is_empty() {
            // Count coverage per candidate node.
            let mut nodes: HashSet<NodeId> = HashSet::new();
            for r in &remaining {
                nodes.extend(r.candidates.iter().copied());
            }
            let best = nodes
                .into_iter()
                .map(|n| {
                    let covers = remaining
                        .iter()
                        .filter(|r| r.candidates.contains(&n))
                        .count();
                    (
                        covers,
                        std::cmp::Reverse(queues.wait(n)),
                        std::cmp::Reverse(n),
                    )
                })
                .max();
            // Every remaining request has at least one candidate (validated
            // above), so a round always finds a node.
            let Some(best) = best else { break };
            let node = best.2 .0;
            let mut i = 0;
            while i < remaining.len() {
                if remaining[i].candidates.contains(&node) {
                    let r = remaining.swap_remove(i);
                    queues.enqueue(node, r.size);
                    out.push(Assignment {
                        fragment: r.fragment,
                        node,
                    });
                } else {
                    i += 1;
                }
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "greedy-sc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nashdb_core::ids::FragmentId;
    use nashdb_core::routing::span;

    fn req(frag: u64, size: u64, candidates: &[u64]) -> FragmentRequest {
        FragmentRequest {
            fragment: FragmentId(frag),
            size,
            candidates: candidates.iter().map(|&n| NodeId(n)).collect(),
        }
    }

    #[test]
    fn shortest_queue_balances_ignoring_span() {
        let r = ShortestQueue;
        let mut q = QueueView::new(3);
        let out = r
            .route(
                &[
                    req(0, 10, &[0, 1, 2]),
                    req(1, 10, &[0, 1, 2]),
                    req(2, 10, &[0, 1, 2]),
                ],
                &mut q,
            )
            .unwrap();
        // Perfect spread: span 3.
        assert_eq!(span(&out), 3);
    }

    #[test]
    fn shortest_queue_respects_existing_load() {
        let r = ShortestQueue;
        let mut q = QueueView::from_waits(vec![1_000, 0]);
        let out = r.route(&[req(0, 10, &[0, 1])], &mut q).unwrap();
        assert_eq!(out[0].node, NodeId(1));
    }

    #[test]
    fn greedy_sc_minimizes_span() {
        let r = GreedySetCover;
        let mut q = QueueView::new(3);
        // Node 2 covers everything; others cover one each.
        let out = r
            .route(
                &[req(0, 10, &[0, 2]), req(1, 10, &[1, 2]), req(2, 10, &[2])],
                &mut q,
            )
            .unwrap();
        assert_eq!(span(&out), 1);
        assert!(out.iter().all(|a| a.node == NodeId(2)));
    }

    #[test]
    fn greedy_sc_ignores_queues() {
        let r = GreedySetCover;
        // Node 0 covers both fragments but is heavily loaded; Greedy SC
        // still funnels everything to it (that is its pathology, Fig. 8c).
        let mut q = QueueView::from_waits(vec![1_000_000, 0, 0]);
        let out = r
            .route(&[req(0, 10, &[0, 1]), req(1, 10, &[0, 2])], &mut q)
            .unwrap();
        assert_eq!(span(&out), 1);
        assert!(out.iter().all(|a| a.node == NodeId(0)));
    }

    #[test]
    fn greedy_sc_multiple_rounds() {
        let r = GreedySetCover;
        let mut q = QueueView::new(3);
        // No single node covers everything.
        let out = r
            .route(
                &[req(0, 10, &[0]), req(1, 10, &[1]), req(2, 10, &[1])],
                &mut q,
            )
            .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(span(&out), 2);
    }

    #[test]
    fn both_deterministic() {
        let reqs = vec![
            req(0, 10, &[0, 1, 2]),
            req(1, 20, &[1, 2]),
            req(2, 30, &[0, 2]),
        ];
        for router in [&ShortestQueue as &dyn ScanRouter, &GreedySetCover] {
            let mut q1 = QueueView::new(3);
            let mut q2 = QueueView::new(3);
            assert_eq!(
                router.route(&reqs, &mut q1).unwrap(),
                router.route(&reqs, &mut q2).unwrap()
            );
        }
    }
}
