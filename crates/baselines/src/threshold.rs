//! The E-Store-like *Threshold* baseline (paper §10.3).
//!
//! E-Store classifies tuples as **hot** (accessed frequently) or **cold**
//! and spreads them over a *fixed* number of nodes; the paper's variant
//! additionally replicates each tuple "in linear proportion to the tuple's
//! access frequency" (since E-Store itself is an OLTP system without
//! replicas) and assigns with the "Greedy extended" placement: hottest
//! first, onto the least-loaded node. The tuning knob is the node count.
//!
//! We track access frequency at block granularity over a sliding window of
//! scans, exactly the observation stream the other systems get.

use std::collections::VecDeque;

use nashdb_cluster::QueryRequest;
use nashdb_core::fragment::FragmentRange;
use nashdb_core::ids::TableId;
use nashdb_core::num::{saturating_u64, usize_from};
use nashdb_workload::Database;

use nashdb::{DistScheme, Distributor, GlobalFragment};

/// Hotness threshold: a block is hot if its access count exceeds this
/// multiple of the mean block access count.
const HOT_FACTOR: f64 = 2.0;

/// One observed scan, remembered so its counts can be retired when it
/// leaves the window.
#[derive(Debug, Clone, Copy)]
struct WindowedScan {
    table: usize,
    start: u64,
    end: u64,
}

/// The Threshold distributor.
#[derive(Debug)]
pub struct ThresholdDistributor {
    db: Database,
    /// Fixed cluster size (the tuning knob).
    nodes: usize,
    /// Node disk capacity in tuples.
    disk: u64,
    /// Per table, the number of frequency-tracking blocks.
    blocks_of: Vec<usize>,
    /// Per table, per block: windowed access count.
    counts: Vec<Vec<u64>>,
    window: VecDeque<WindowedScan>,
    capacity: usize,
}

impl ThresholdDistributor {
    /// Creates the distributor with a fixed `nodes`-node cluster of
    /// `disk`-tuple nodes and a `window`-scan frequency window.
    ///
    /// # Panics
    /// Panics if the cluster cannot hold even one copy of the database.
    pub fn new(db: &Database, nodes: usize, disk: u64, window: usize) -> Self {
        assert!(nodes > 0 && disk > 0 && window > 0);
        assert!(
            nodes as u64 * disk >= db.total_tuples(),
            "{nodes} nodes × {disk} tuples cannot hold the {} -tuple database",
            db.total_tuples()
        );
        let mut t = ThresholdDistributor {
            db: db.clone(),
            nodes,
            disk,
            blocks_of: Vec::new(),
            counts: Vec::new(),
            window: VecDeque::with_capacity(window),
            capacity: window,
        };
        t.set_block(disk / 8);
        t
    }

    /// Sets the tracking/read block size in tuples (shared with the other
    /// systems so latency reflects distribution policy, not granularity).
    /// Resets frequency counts.
    pub fn with_block(mut self, block: u64) -> Self {
        self.set_block(block);
        self
    }

    fn set_block(&mut self, block: u64) {
        let block = block.max(1);
        self.blocks_of = self
            .db
            .tables
            .iter()
            .map(|t| usize_from(t.tuples.div_ceil(block)).clamp(1, 4096))
            .collect();
        self.counts = self.blocks_of.iter().map(|&b| vec![0u64; b]).collect();
        self.window.clear();
    }

    fn block_range(&self, table: usize, block: usize) -> FragmentRange {
        let tuples = self.db.tables[table].tuples;
        let b = self.blocks_of[table] as u64;
        let i = block as u64;
        let start = i * tuples / b;
        let end = ((i + 1) * tuples / b).max(start + 1).min(tuples);
        FragmentRange::new(start, end.max(start + 1))
    }

    fn bump(&mut self, scan: WindowedScan, delta: i64) {
        let tuples = self.db.tables[scan.table].tuples;
        let nblocks = self.blocks_of[scan.table];
        let b = nblocks as u64;
        // Blocks overlapping [start, end).
        let first = usize_from(scan.start * b / tuples);
        let last = usize_from((scan.end - 1) * b / tuples);
        for blk in first..=last.min(nblocks - 1) {
            let c = &mut self.counts[scan.table][blk];
            if delta > 0 {
                *c += 1;
            } else {
                *c = c.saturating_sub(1);
            }
        }
    }
}

impl Distributor for ThresholdDistributor {
    fn observe(&mut self, query: &QueryRequest) {
        for s in &query.scans {
            let w = WindowedScan {
                table: usize_from(s.table.get()),
                start: s.start,
                end: s.end.min(self.db.tables[usize_from(s.table.get())].tuples),
            };
            if w.start >= w.end {
                continue;
            }
            if self.window.len() == self.capacity {
                if let Some(old) = self.window.pop_front() {
                    self.bump(old, -1);
                }
            }
            self.window.push_back(w);
            self.bump(w, 1);
        }
    }

    fn scheme(&mut self) -> DistScheme {
        // Mean block access count (over all blocks).
        let total_blocks: usize = self.counts.iter().map(Vec::len).sum();
        let total_count: u64 = self.counts.iter().flatten().sum();
        let mean = (total_count as f64 / total_blocks as f64).max(1e-9);

        // One fragment per block; hot blocks get frequency-proportional
        // replicas (capped by the node count — replicas need distinct
        // nodes); cold blocks stay single-copy on the base partitioning.
        struct Block {
            frag: GlobalFragment,
            count: u64,
            replicas: u64,
        }
        let mut blocks: Vec<Block> = Vec::with_capacity(total_blocks);
        for (t, counts) in self.counts.iter().enumerate() {
            for (b, &count) in counts.iter().enumerate() {
                let range = self.block_range(t, b);
                let hot = count as f64 > HOT_FACTOR * mean;
                let replicas = if hot {
                    saturating_u64((count as f64 / mean).round()).clamp(2, self.nodes as u64)
                } else {
                    1
                };
                blocks.push(Block {
                    frag: GlobalFragment {
                        table: TableId(t as u64),
                        range,
                    },
                    count,
                    replicas,
                });
            }
        }

        // Base layer, as in E-Store: the database is *range partitioned*
        // across the fixed cluster — node i holds the i-th contiguous slice
        // of each table's blocks (E-Store's underlying store keeps a single
        // range-partitioned copy; only hot tuples move or replicate).
        let mut node_frags: Vec<Vec<usize>> = vec![Vec::new(); self.nodes];
        let mut node_used: Vec<u64> = vec![0; self.nodes];
        {
            let total: u64 = blocks.iter().map(|b| b.frag.range.size()).sum();
            let mut cum = 0u64;
            for (i, b) in blocks.iter().enumerate() {
                let size = b.frag.range.size();
                // The node whose slice the block's midpoint falls in; bump
                // forward if that node's disk is already full.
                let slice = (cum + size / 2) as u128 * self.nodes as u128 / total.max(1) as u128;
                let mut node = usize::try_from(slice)
                    .unwrap_or(usize::MAX)
                    .min(self.nodes - 1);
                while node_used[node] + size > self.disk {
                    node += 1;
                    assert!(
                        node < self.nodes,
                        "threshold cluster too small: block of {size} tuples has no home"
                    );
                }
                node_frags[node].push(i);
                node_used[node] = node_used[node].saturating_add(size);
                cum = cum.saturating_add(size);
            }
        }

        // Hot layer ("Greedy extended"): extra replicas of hot blocks,
        // hottest first, each onto the least-loaded node with space that
        // does not already hold the block.
        let mut order: Vec<usize> = (0..blocks.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse((blocks[i].count, blocks[i].frag.range.size())));
        for &i in &order {
            let size = blocks[i].frag.range.size();
            for _ in 1..blocks[i].replicas {
                let slot = (0..self.nodes)
                    .filter(|&n| node_used[n] + size <= self.disk && !node_frags[n].contains(&i))
                    .min_by_key(|&n| (node_used[n], n));
                match slot {
                    Some(n) => {
                        node_frags[n].push(i);
                        node_used[n] = node_used[n].saturating_add(size);
                    }
                    None => break,
                }
            }
        }

        DistScheme::new(blocks.into_iter().map(|b| b.frag).collect(), node_frags)
    }

    fn name(&self) -> &'static str {
        "threshold"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nashdb_cluster::ScanRange;

    fn db() -> Database {
        Database::new([("fact", 128_000)])
    }

    fn query(start: u64, end: u64) -> QueryRequest {
        QueryRequest {
            price: 1.0,
            scans: vec![ScanRange::new(TableId(0), start, end)],
            tag: 0,
        }
    }

    #[test]
    fn cold_scheme_covers_database_once() {
        let database = db();
        let mut t = ThresholdDistributor::new(&database, 4, 64_000, 50);
        let s = t.scheme();
        assert!(s.covers(&database));
        assert_eq!(s.num_nodes(), 4);
        // With no accesses everything is cold: exactly one replica each.
        assert_eq!(s.total_replicas(), s.fragments().len());
    }

    #[test]
    fn hot_blocks_get_extra_replicas() {
        let database = db();
        let mut t = ThresholdDistributor::new(&database, 4, 64_000, 50);
        // Hammer the first block-sized region.
        for _ in 0..40 {
            t.observe(&query(0, 1_000));
        }
        // Background uniform accesses so the mean is meaningful.
        for i in 0..10 {
            t.observe(&query(i * 12_800, (i + 1) * 12_800));
        }
        let s = t.scheme();
        assert!(s.covers(&database));
        let hot_replicas = s
            .fragments()
            .iter()
            .enumerate()
            .filter(|(_, gf)| gf.range.start == 0)
            .map(|(i, _)| s.hosts(i).len())
            .next()
            .unwrap();
        assert!(hot_replicas >= 2, "hot block has {hot_replicas} replicas");
    }

    #[test]
    fn window_eviction_cools_blocks_down() {
        let database = db();
        let mut t = ThresholdDistributor::new(&database, 4, 64_000, 10);
        for _ in 0..10 {
            t.observe(&query(0, 1_000));
        }
        assert!(t.counts[0][0] >= 10);
        // Push the window full of scans elsewhere: old counts retire.
        for _ in 0..10 {
            t.observe(&query(100_000, 101_000));
        }
        assert_eq!(t.counts[0][0], 0);
    }

    #[test]
    fn respects_fixed_node_count() {
        let database = db();
        for n in [2usize, 4, 8] {
            let mut t = ThresholdDistributor::new(&database, n, 128_000, 50);
            assert_eq!(t.scheme().num_nodes(), n);
        }
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn rejects_undersized_cluster() {
        let _ = ThresholdDistributor::new(&db(), 1, 1_000, 50);
    }
}
