//! # nashdb-baselines
//!
//! The comparator systems of the paper's evaluation (§10), implemented from
//! their descriptions so every experiment pits NashDB against real
//! competition on the identical simulated substrate:
//!
//! * [`dt`] — the *DT* fragmenter: recursive best-split only (split
//!   procedure of NashDB without merging; CART-style).
//! * [`naive`] — equal-width fragmentation.
//! * [`hypergraph`] — SWORD-like: tuples and scans as a hypergraph,
//!   partitioned to minimize cut (query span), with leftover disk filled by
//!   span-reducing replicas ("Improved LMBR"); tuned by partition count.
//! * [`threshold`] — E-Store-like: hot/cold tuple classification with
//!   frequency-proportional replication over a fixed node count.
//! * [`routers`] — *Shortest queue* (always the least-loaded replica) and
//!   *Greedy SC* (span-minimizing greedy set cover).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dt;
pub mod hypergraph;
pub mod naive;
pub mod routers;
pub mod threshold;

pub use dt::dt_fragmentation;
pub use hypergraph::{hypergraph_fragmentation, HypergraphDistributor};
pub use naive::naive_fragmentation;
pub use routers::{GreedySetCover, ShortestQueue};
pub use threshold::ThresholdDistributor;
