//! The SWORD-like *Hypergraph* baseline (paper §10.1, §10.3).
//!
//! SWORD models tuples as vertices and queries as hyperedges and cuts the
//! hypergraph into `k` balanced partitions breaking as few edges as
//! possible; leftover disk space is filled with replicas chosen to repair
//! broken edges ("Improved LMBR"). Our queries are *range scans over
//! ordered tables*, for which the min-cut balanced partition can be taken
//! contiguous: a hyperedge (scan) is broken exactly by the cut points that
//! fall strictly inside it, so choosing `k − 1` cut points minimizing the
//! number of scans they cross *is* the hypergraph cut objective. We solve
//! that exactly with dynamic programming under a balance constraint,
//! matching SWORD's balanced k-way cut on this workload class.
//!
//! The tuning knob, as in the paper, is the partition count (= node count):
//! more partitions → more nodes → more cost, less latency.

use std::collections::VecDeque;

use nashdb_cluster::QueryRequest;
use nashdb_core::fragment::{split_oversized, FragmentRange, Fragmentation};
use nashdb_core::num::{saturating_u64, usize_from};
use nashdb_workload::Database;

use nashdb::{DistScheme, Distributor, GlobalFragment};

/// Balance slack: every partition must hold between `avg/BALANCE` and
/// `avg × BALANCE` tuples (SWORD's ε-balanced partitioning).
const BALANCE: f64 = 2.0;

/// Contiguous min-cut partitioning of `[0, table_len)` into `parts` pieces,
/// where the cost of a cut point is the number of `scans` strictly crossing
/// it. Exact DP over candidate cut points (scan endpoints plus an
/// equal-width grid for balance feasibility).
///
/// # Panics
/// Panics if `parts` is zero or `table_len` is zero.
#[allow(clippy::needless_range_loop)] // index arithmetic *is* the DP
pub fn hypergraph_fragmentation(
    scans: &[(u64, u64)],
    table_len: u64,
    parts: usize,
) -> Fragmentation {
    assert!(parts > 0, "need at least one partition");
    assert!(table_len > 0, "cannot partition an empty table");
    let parts = parts.min(usize_from(table_len));
    if parts == 1 {
        return Fragmentation::single(table_len);
    }

    // Candidate cut points: scan endpoints inside the table plus a grid.
    let mut candidates: Vec<u64> = scans
        .iter()
        .flat_map(|&(s, e)| [s, e])
        .filter(|&p| p > 0 && p < table_len)
        .collect();
    for i in 1..(parts as u64 * 4) {
        let p = i * table_len / (parts as u64 * 4);
        if p > 0 && p < table_len {
            candidates.push(p);
        }
    }
    candidates.push(0);
    candidates.push(table_len);
    candidates.sort_unstable();
    candidates.dedup();

    // cross[i]: scans strictly containing candidates[i].
    let cross: Vec<u64> = candidates
        .iter()
        .map(|&p| scans.iter().filter(|&&(s, e)| s < p && p < e).count() as u64)
        .collect();

    let avg = table_len as f64 / parts as f64;
    let min_sz = saturating_u64((avg / BALANCE).floor());
    let max_sz = saturating_u64((avg * BALANCE).ceil());
    let feasible = |a: u64, b: u64| {
        let sz = b - a;
        sz >= min_sz.max(1) && sz <= max_sz
    };

    // dp[j][i]: min crossings placing j parts over candidates[..=i], with a
    // cut at candidates[i].
    let m = candidates.len();
    const INF: u64 = u64::MAX / 2;
    let mut dp = vec![INF; m];
    for (i, &c) in candidates.iter().enumerate() {
        if feasible(0, c) {
            dp[i] = 0; // cut cost counted when the cut is *interior*
        }
    }
    let mut choice = vec![vec![usize::MAX; m]; parts + 1];
    for j in 2..=parts {
        let mut next = vec![INF; m];
        for i in 0..m {
            for p in 0..i {
                if dp[p] == INF || !feasible(candidates[p], candidates[i]) {
                    continue;
                }
                let cand = dp[p] + cross[p];
                if cand < next[i] {
                    next[i] = cand;
                    choice[j][i] = p;
                }
            }
        }
        dp = next;
    }

    let last = m - 1;
    if dp[last] >= INF {
        // Balance-infeasible with these candidates: fall back to equal
        // width (the degenerate answer SWORD's ε-relaxation converges to).
        return Fragmentation::equal_width(table_len, parts);
    }
    let mut cuts = vec![table_len];
    let mut i = last;
    for j in (2..=parts).rev() {
        i = choice[j][i];
        cuts.push(candidates[i]);
    }
    cuts.push(0);
    cuts.sort_unstable();
    cuts.dedup();
    Fragmentation::from_boundaries(cuts)
}

/// The end-to-end Hypergraph distributor: global contiguous min-cut
/// partitions (one node each) plus span-repairing replication into leftover
/// disk space.
#[derive(Debug)]
pub struct HypergraphDistributor {
    db: Database,
    /// Partition count (the tuning knob; = primary node count).
    parts: usize,
    /// Node disk capacity in tuples.
    disk: u64,
    /// Recent scans in global coordinates.
    window: VecDeque<(u64, u64)>,
    capacity: usize,
    offsets: Vec<u64>,
    /// Read-block size: fragments within a partition are cut to at most
    /// this many tuples (a partition is the placement unit, a block the
    /// read unit — SWORD fetches tuples, not whole partitions).
    block: u64,
}

impl HypergraphDistributor {
    /// Creates the distributor with `parts` partitions, `disk`-tuple nodes,
    /// and a scan window of `window` scans.
    ///
    /// # Panics
    /// Panics if any partition could not fit on a node even at perfect
    /// balance (`parts` too small for the database).
    pub fn new(db: &Database, parts: usize, disk: u64, window: usize) -> Self {
        assert!(parts > 0 && disk > 0 && window > 0);
        let mut offsets = Vec::with_capacity(db.tables.len());
        let mut acc = 0;
        for t in &db.tables {
            offsets.push(acc);
            acc += t.tuples;
        }
        HypergraphDistributor {
            db: db.clone(),
            parts,
            disk,
            window: VecDeque::with_capacity(window),
            capacity: window,
            offsets,
            block: disk,
        }
    }

    /// Caps the read-block (fragment) size within each partition.
    pub fn with_block(mut self, block: u64) -> Self {
        assert!(block > 0, "block size must be nonzero");
        self.block = block;
        self
    }

    fn to_global(&self, q: &QueryRequest) -> Vec<(u64, u64)> {
        q.scans
            .iter()
            .map(|s| {
                let off = self.offsets[usize_from(s.table.get())];
                (off + s.start, off + s.end)
            })
            .collect()
    }

    /// Splits a global tuple range at table boundaries (and then into
    /// read-block-sized pieces) into per-table fragments.
    fn global_to_fragments(&self, start: u64, end: u64) -> Vec<GlobalFragment> {
        let mut out = Vec::new();
        for (idx, t) in self.db.tables.iter().enumerate() {
            let off = self.offsets[idx];
            let lo = start.max(off);
            let hi = end.min(off + t.tuples);
            if lo < hi {
                let span = hi - lo;
                let pieces = span.div_ceil(self.block).max(1);
                for p in 0..pieces {
                    let a = lo + p * span / pieces;
                    let b = lo + (p + 1) * span / pieces;
                    if a < b {
                        out.push(GlobalFragment {
                            table: t.id,
                            range: FragmentRange::new(a - off, b - off),
                        });
                    }
                }
            }
        }
        out
    }
}

impl Distributor for HypergraphDistributor {
    fn observe(&mut self, query: &QueryRequest) {
        for g in self.to_global(query) {
            if self.window.len() == self.capacity {
                self.window.pop_front();
            }
            self.window.push_back(g);
        }
    }

    fn scheme(&mut self) -> DistScheme {
        let total = self.db.total_tuples();
        let scans: Vec<(u64, u64)> = self.window.iter().copied().collect();
        let partition = hypergraph_fragmentation(&scans, total, self.parts);
        let partition = split_oversized(&partition, self.disk);

        // Each partition piece -> fragments (cut at table boundaries), all
        // primary on one node per *original* partition piece.
        let mut fragments: Vec<GlobalFragment> = Vec::new();
        let mut nodes: Vec<Vec<usize>> = Vec::new();
        let mut node_used: Vec<u64> = Vec::new();
        let mut node_ranges: Vec<(u64, u64)> = Vec::new(); // global primary range
        for r in partition.ranges() {
            let mut holding = Vec::new();
            for gf in self.global_to_fragments(r.start, r.end) {
                holding.push(fragments.len());
                fragments.push(gf);
            }
            node_used.push(r.size());
            node_ranges.push((r.start, r.end));
            nodes.push(holding);
        }

        // Improved-LMBR-style replication: fill leftover disk with replicas
        // that repair broken edges. Benefit of hosting fragment f on node n:
        // number of windowed scans touching both n's primary range and f.
        let frag_global: Vec<(u64, u64)> = fragments
            .iter()
            .map(|gf| {
                let off = self.offsets[usize_from(gf.table.get())];
                (off + gf.range.start, off + gf.range.end)
            })
            .collect();
        let overlaps = |a: (u64, u64), b: (u64, u64)| a.0 < b.1 && b.0 < a.1;
        let mut pairs: Vec<(u64, usize, usize)> = Vec::new(); // (benefit, node, frag)
        for (n, &nr) in node_ranges.iter().enumerate() {
            for (f, &fr) in frag_global.iter().enumerate() {
                if nodes[n].contains(&f) {
                    continue;
                }
                let benefit = scans
                    .iter()
                    .filter(|&&(s, e)| overlaps((s, e), nr) && overlaps((s, e), fr))
                    .count() as u64;
                if benefit > 0 {
                    pairs.push((benefit, n, f));
                }
            }
        }
        pairs.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        for (_, n, f) in pairs {
            let size = fragments[f].range.size();
            if node_used[n] + size <= self.disk && !nodes[n].contains(&f) {
                nodes[n].push(f);
                node_used[n] = node_used[n].saturating_add(size);
            }
        }

        DistScheme::new(fragments, nodes)
    }

    fn name(&self) -> &'static str {
        "hypergraph"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nashdb_cluster::ScanRange;
    use nashdb_core::ids::TableId;

    #[test]
    fn cuts_avoid_crossing_hot_scans() {
        // Scans repeatedly read [40, 60): with 2 parts, the cut should not
        // fall inside that range.
        let scans: Vec<(u64, u64)> = (0..20).map(|_| (40, 60)).collect();
        let f = hypergraph_fragmentation(&scans, 100, 2);
        let cut = f.boundaries()[1];
        assert!(!(40 < cut && cut < 60), "cut {cut} crosses the hot scan");
    }

    #[test]
    fn partitions_are_balanced() {
        let scans = vec![(0, 100), (10, 20), (80, 90)];
        let f = hypergraph_fragmentation(&scans, 1_000, 4);
        assert_eq!(f.len(), 4);
        let avg = 250.0;
        for r in f.ranges() {
            assert!(
                (r.size() as f64) <= avg * BALANCE + 1.0
                    && (r.size() as f64) >= avg / BALANCE - 1.0,
                "unbalanced partition {r}"
            );
        }
    }

    #[test]
    fn no_scans_degenerates_gracefully() {
        let f = hypergraph_fragmentation(&[], 100, 4);
        assert_eq!(f.len(), 4);
        assert_eq!(f.table_len(), 100);
    }

    #[test]
    fn single_part_is_whole_table() {
        let f = hypergraph_fragmentation(&[(0, 10)], 100, 1);
        assert_eq!(f.boundaries(), &[0, 100]);
    }

    fn db() -> Database {
        Database::new([("a", 60_000), ("b", 40_000)])
    }

    fn query(scans: &[(u64, u64, u64)]) -> QueryRequest {
        QueryRequest {
            price: 1.0,
            scans: scans
                .iter()
                .map(|&(t, s, e)| ScanRange::new(TableId(t), s, e))
                .collect(),
            tag: 0,
        }
    }

    #[test]
    fn distributor_scheme_covers_database() {
        let database = db();
        let mut h = HypergraphDistributor::new(&database, 4, 60_000, 50);
        for _ in 0..20 {
            h.observe(&query(&[(0, 0, 30_000), (1, 0, 10_000)]));
        }
        let s = h.scheme();
        assert!(s.covers(&database));
        assert!(s.num_nodes() >= 4);
    }

    #[test]
    fn replication_fills_free_space_for_hot_edges() {
        let database = db();
        // Big disks: lots of leftover space for repair replicas.
        let mut h = HypergraphDistributor::new(&database, 4, 90_000, 50);
        for _ in 0..30 {
            h.observe(&query(&[(0, 0, 60_000)])); // spans many partitions
        }
        let s = h.scheme();
        assert!(
            s.total_replicas() > s.fragments().len(),
            "no repair replicas were added"
        );
    }

    #[test]
    fn more_parts_more_nodes() {
        let database = db();
        let mut small = HypergraphDistributor::new(&database, 2, 60_000, 50);
        let mut big = HypergraphDistributor::new(&database, 8, 60_000, 50);
        let q = query(&[(0, 0, 30_000)]);
        for _ in 0..10 {
            small.observe(&q);
            big.observe(&q);
        }
        assert!(big.scheme().num_nodes() > small.scheme().num_nodes());
    }
}
